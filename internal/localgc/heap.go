// Package localgc simulates the per-process local garbage collector the
// paper builds the reference graph on top of (§2.2), without requiring any
// cooperation from the host language runtime — exactly the constraint the
// paper works under with the JVM.
//
// The heap stores passive objects (cells) owned by the activities of one
// process. References to remote activities are materialized as stub cells.
// All stubs held by one activity for the same remote target share a single
// tag cell; the DGC keeps a weak reference to the tag, so the local
// collection of *all* such stubs — and only that — is observable as the tag
// dying at the next sweep. This reproduces the paper's "common tag + weak
// reference" optimization verbatim.
//
// The no-sharing property (§2.1) is enforced at interning time: every cell
// records its owning activity and values are deep-copied across activity
// boundaries by the wire codec before they ever reach the heap.
//
// The heap is sharded 32 ways by owning activity (the same shape as
// simnet's routing shards): one activity's object graph never references
// another activity's cells — no sharing, enforced above — so each shard
// is an independent heap with its own lock, allocator, tag table and
// mark-sweep. Hot-path interning and root flips from many concurrent
// activities stop serializing on a single mutex. The shard index rides
// in the low 5 bits of every ObjRef and RootID, so ref-addressed
// operations (Materialize, AddRoot/RemoveRoot, NewWeak) find their shard
// without consulting the owner.
package localgc

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/wire"
)

// ObjRef is a handle to a heap cell. The zero ObjRef is "nil pointer".
type ObjRef uint64

// RootID names a GC root registration.
type RootID uint64

// numShards is a power of two so shard picks compile to masks; shardBits
// is the width of the shard index carried in ObjRef/RootID low bits.
const (
	numShards = 32
	shardBits = 5
)

// cellKind discriminates the heap cell variants.
type cellKind uint8

const (
	kindScalar cellKind = iota + 1
	kindList
	kindDict
	kindStub
	kindTag
	kindFutureStub
	kindFutureTag
)

// cell is one passive object.
type cell struct {
	kind  cellKind
	owner ids.ActivityID
	// scalar payload (kindScalar only).
	scalar wire.Value
	// children for lists; also the single tag child for stubs.
	children []ObjRef
	// keys parallel to children (kindDict only).
	keys []string
	// stub target (kindStub); tag identity (kindTag shares owner+target).
	target ids.ActivityID
	// future identity (kindFutureStub and kindFutureTag). Future stubs
	// also keep the original future value in scalar so Materialize can
	// rebuild it.
	future ids.FutureID
	marked bool
}

// TagDeath reports that activity Owner no longer holds any stub for Target:
// the shared tag cell died at a local collection.
type TagDeath struct {
	Owner  ids.ActivityID
	Target ids.ActivityID
}

// Stats summarizes a collection.
type Stats struct {
	// Live is the number of cells surviving the sweep.
	Live int
	// Freed is the number of cells reclaimed by the sweep.
	Freed int
	// TagDeaths lists the (owner, target) stub tags that died.
	TagDeaths []TagDeath
	// FutureDeaths lists the futures for which no activity in the swept
	// shard holds a future stub anymore (the runtime's future-table sweep
	// polls HasFutureTag instead of consuming these; they are reported
	// for tests and metrics).
	FutureDeaths []ids.FutureID
}

type tagKey struct {
	owner  ids.ActivityID
	target ids.ActivityID
}

// heapShard is one independent heap: cells owned by the activities that
// hash here, with a private allocator, root set, tag tables and weak
// registry. An object graph never spans shards (interning passes one
// owner down the whole graph), so each shard marks and sweeps alone.
type heapShard struct {
	idx      uint64
	mu       sync.Mutex
	cells    map[ObjRef]*cell
	nextObj  uint64
	roots    map[RootID]ObjRef
	nextRoot uint64
	tags     map[tagKey]ObjRef
	futTags  map[ids.FutureID]ObjRef
	weaks    map[ObjRef][]*Weak
}

// Heap is the object heap of one process. It is safe for concurrent use.
type Heap struct {
	shards [numShards]heapShard

	// onTagDeath, if set, is invoked (outside the heap lock) once per tag
	// death at the end of each collection. The DGC driver subscribes here.
	onTagDeath func(TagDeath)
}

// New returns an empty heap. onTagDeath may be nil.
func New(onTagDeath func(TagDeath)) *Heap {
	h := &Heap{onTagDeath: onTagDeath}
	for i := range h.shards {
		s := &h.shards[i]
		s.idx = uint64(i)
		s.cells = make(map[ObjRef]*cell)
		s.roots = make(map[RootID]ObjRef)
		s.tags = make(map[tagKey]ObjRef)
		s.futTags = make(map[ids.FutureID]ObjRef)
		s.weaks = make(map[ObjRef][]*Weak)
	}
	return h
}

// shardOf picks the shard owning an activity's object graph.
func (h *Heap) shardOf(owner ids.ActivityID) *heapShard {
	return &h.shards[(uint32(owner.Node)*31+owner.Seq)%numShards]
}

// shardFor picks the shard a ref- or root-handle encodes.
func (h *Heap) shardFor(bits uint64) *heapShard {
	return &h.shards[bits&(numShards-1)]
}

func (s *heapShard) alloc(c *cell) ObjRef {
	s.nextObj++
	ref := ObjRef(s.nextObj<<shardBits | s.idx)
	s.cells[ref] = c
	return ref
}

// Intern deep-copies the value graph v into heap cells owned by owner and
// returns the root cell. Every wire.Ref in v becomes a stub cell whose tag
// is shared with all other stubs of the same (owner, target) pair.
func (h *Heap) Intern(owner ids.ActivityID, v wire.Value) ObjRef {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.intern(owner, v)
}

func (s *heapShard) intern(owner ids.ActivityID, v wire.Value) ObjRef {
	switch v.Kind() {
	case wire.KindList:
		children := make([]ObjRef, v.Len())
		for i := 0; i < v.Len(); i++ {
			children[i] = s.intern(owner, v.At(i))
		}
		return s.alloc(&cell{kind: kindList, owner: owner, children: children})
	case wire.KindDict:
		keys := v.Keys()
		children := make([]ObjRef, len(keys))
		for i, k := range keys {
			children[i] = s.intern(owner, v.Get(k))
		}
		return s.alloc(&cell{kind: kindDict, owner: owner, keys: keys, children: children})
	case wire.KindRef:
		target, _ := v.AsRef()
		return s.internStub(owner, target)
	case wire.KindFuture:
		return s.internFutureStub(owner, v)
	default:
		return s.alloc(&cell{kind: kindScalar, owner: owner, scalar: v})
	}
}

func (s *heapShard) internStub(owner, target ids.ActivityID) ObjRef {
	return s.alloc(&cell{
		kind:     kindStub,
		owner:    owner,
		target:   target,
		children: []ObjRef{s.tagForLocked(owner, target)},
	})
}

// internFutureStub allocates a stub for a first-class future value. It
// pins two tags: the (owner, future-owner) activity tag — holding a
// future references the activity the result belongs to, exactly like
// holding a plain stub — and the shard's future tag, whose death tells
// the runtime no activity in this shard can name the future anymore
// (HasFutureTag asks every shard, preserving the node-wide answer).
func (s *heapShard) internFutureStub(owner ids.ActivityID, v wire.Value) ObjRef {
	fr, _ := v.AsFutureRef()
	tag := s.tagForLocked(owner, fr.Owner)
	ftag, ok := s.futTags[fr.ID]
	if !ok {
		ftag = s.alloc(&cell{kind: kindFutureTag, future: fr.ID})
		s.futTags[fr.ID] = ftag
	}
	return s.alloc(&cell{
		kind:     kindFutureStub,
		owner:    owner,
		target:   fr.Owner,
		future:   fr.ID,
		scalar:   v,
		children: []ObjRef{tag, ftag},
	})
}

// NewStub allocates a bare stub cell for owner designating target, sharing
// the (owner, target) tag. The runtime uses it for stubs that exist outside
// any interned value (e.g. a reference held by the service loop itself).
func (h *Heap) NewStub(owner, target ids.ActivityID) ObjRef {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.internStub(owner, target)
}

// InternRooted interns v (like Intern) and registers the resulting cell as
// a root in the same critical section, so a concurrent Collect can never
// observe the cell unrooted.
func (h *Heap) InternRooted(owner ids.ActivityID, v wire.Value) (ObjRef, RootID) {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := s.intern(owner, v)
	return ref, s.addRootLocked(ref)
}

// NewStubRooted allocates a stub (like NewStub) and roots it atomically.
func (h *Heap) NewStubRooted(owner, target ids.ActivityID) (ObjRef, RootID) {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	ref := s.internStub(owner, target)
	return ref, s.addRootLocked(ref)
}

func (s *heapShard) addRootLocked(ref ObjRef) RootID {
	s.nextRoot++
	id := RootID(s.nextRoot<<shardBits | s.idx)
	s.roots[id] = ref
	return id
}

// Materialize rebuilds the wire value stored at ref. Stubs materialize as
// wire.Ref values. Materializing the zero ObjRef or a freed cell yields
// null.
func (h *Heap) Materialize(ref ObjRef) wire.Value {
	s := h.shardFor(uint64(ref))
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materialize(ref)
}

func (s *heapShard) materialize(ref ObjRef) wire.Value {
	c, ok := s.cells[ref]
	if !ok {
		return wire.Null()
	}
	switch c.kind {
	case kindScalar:
		return c.scalar
	case kindList:
		elems := make([]wire.Value, len(c.children))
		for i, ch := range c.children {
			elems[i] = s.materialize(ch)
		}
		return wire.List(elems...)
	case kindDict:
		m := make(map[string]wire.Value, len(c.keys))
		for i, k := range c.keys {
			m[k] = s.materialize(c.children[i])
		}
		return wire.Dict(m)
	case kindStub:
		return wire.Ref(c.target)
	case kindFutureStub:
		return c.scalar
	default: // tags have no value representation
		return wire.Null()
	}
}

// AddRoot registers ref as a GC root and returns a handle to remove it.
func (h *Heap) AddRoot(ref ObjRef) RootID {
	s := h.shardFor(uint64(ref))
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addRootLocked(ref)
}

// RemoveRoot drops a root registration. Removing an unknown root is a
// no-op.
func (h *Heap) RemoveRoot(id RootID) {
	s := h.shardFor(uint64(id))
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.roots, id)
}

// Weak is a weak reference to a heap cell: it does not keep the cell alive
// and observes its collection. This is the mechanism the DGC uses to watch
// stub tags (§2.2).
type Weak struct {
	mu    sync.Mutex
	alive bool
}

// Alive reports whether the referent still exists.
func (w *Weak) Alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *Weak) kill() {
	w.mu.Lock()
	w.alive = false
	w.mu.Unlock()
}

// NewWeak returns a weak reference to ref. If ref does not exist the weak
// reference is born dead.
func (h *Heap) NewWeak(ref ObjRef) *Weak {
	s := h.shardFor(uint64(ref))
	s.mu.Lock()
	defer s.mu.Unlock()
	w := &Weak{}
	if _, ok := s.cells[ref]; !ok {
		return w
	}
	w.alive = true
	s.weaks[ref] = append(s.weaks[ref], w)
	return w
}

// TagFor returns the tag cell shared by owner's stubs of target, creating
// it if needed. The DGC driver takes a weak reference to it.
func (h *Heap) TagFor(owner, target ids.ActivityID) ObjRef {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tagForLocked(owner, target)
}

// RebindStubs rewrites every stub (and future stub) designating old so it
// designates new instead — the heap half of an activity-migration
// redirect. Each rebound stub joins (or creates) the (owner, new) shared
// tag; the old (owner, old) tags are left in place and die at the next
// sweep once nothing references them anymore, firing the ordinary
// tag-death path that removes the old reference-graph edge. The distinct
// owners that held at least one rebound stub are returned so the caller
// can add their (owner → new) edges symmetrically.
func (h *Heap) RebindStubs(old, new ids.ActivityID) []ids.ActivityID {
	if old == new || old.IsNil() || new.IsNil() {
		return nil
	}
	ownerSet := make(map[ids.ActivityID]struct{})
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for _, c := range s.cells {
			switch c.kind {
			case kindStub:
				if c.target != old {
					continue
				}
				c.target = new
				c.children[0] = s.tagForLocked(c.owner, new)
				ownerSet[c.owner] = struct{}{}
			case kindFutureStub:
				if c.target != old {
					continue
				}
				c.target = new
				c.children[0] = s.tagForLocked(c.owner, new)
				if fr, ok := c.scalar.AsFutureRef(); ok && fr.Owner == old {
					fr.Owner = new
					c.scalar = wire.FutureVal(fr)
				}
				ownerSet[c.owner] = struct{}{}
			}
		}
		s.mu.Unlock()
	}
	if len(ownerSet) == 0 {
		return nil
	}
	owners := make([]ids.ActivityID, 0, len(ownerSet))
	for o := range ownerSet {
		owners = append(owners, o)
	}
	return owners
}

// tagForLocked returns (creating if needed) the shared (owner, target)
// tag cell; the caller holds s.mu.
func (s *heapShard) tagForLocked(owner, target ids.ActivityID) ObjRef {
	key := tagKey{owner: owner, target: target}
	tag, ok := s.tags[key]
	if !ok {
		tag = s.alloc(&cell{kind: kindTag, owner: owner, target: target})
		s.tags[key] = tag
	}
	return tag
}

// Collect runs a mark-and-sweep and returns aggregate statistics. Each
// shard is collected independently under its own lock (object graphs
// never span shards), so the stop-the-world window is per shard, not per
// heap. Tag-death callbacks fire after each shard's sweep, outside the
// locks.
func (h *Heap) Collect() Stats {
	var st Stats
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		shardStats := s.collectLocked()
		s.mu.Unlock()
		st.Live += shardStats.Live
		st.Freed += shardStats.Freed
		st.TagDeaths = append(st.TagDeaths, shardStats.TagDeaths...)
		st.FutureDeaths = append(st.FutureDeaths, shardStats.FutureDeaths...)
		if h.onTagDeath != nil {
			for _, d := range shardStats.TagDeaths {
				h.onTagDeath(d)
			}
		}
	}
	return st
}

func (s *heapShard) collectLocked() Stats {
	// Mark.
	for _, c := range s.cells {
		c.marked = false
	}
	stack := make([]ObjRef, 0, len(s.roots))
	for _, ref := range s.roots {
		stack = append(stack, ref)
	}
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := s.cells[ref]
		if !ok || c.marked {
			continue
		}
		c.marked = true
		stack = append(stack, c.children...)
	}

	// Sweep.
	var st Stats
	for ref, c := range s.cells {
		if c.marked {
			st.Live++
			continue
		}
		st.Freed++
		delete(s.cells, ref)
		for _, w := range s.weaks[ref] {
			w.kill()
		}
		delete(s.weaks, ref)
		switch c.kind {
		case kindTag:
			key := tagKey{owner: c.owner, target: c.target}
			delete(s.tags, key)
			st.TagDeaths = append(st.TagDeaths, TagDeath{Owner: c.owner, Target: c.target})
		case kindFutureTag:
			delete(s.futTags, c.future)
			st.FutureDeaths = append(st.FutureDeaths, c.future)
		}
	}
	return st
}

// NumCells returns the current number of cells (for tests and metrics).
func (h *Heap) NumCells() int {
	total := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		total += len(s.cells)
		s.mu.Unlock()
	}
	return total
}

// NumRoots returns the current number of registered roots.
func (h *Heap) NumRoots() int {
	total := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		total += len(s.roots)
		s.mu.Unlock()
	}
	return total
}

// HasTag reports whether owner currently holds a live tag for target, i.e.
// whether at least one stub (owner → target) existed at the last sweep.
func (h *Heap) HasTag(owner, target ids.ActivityID) bool {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tags[tagKey{owner: owner, target: target}]
	return ok
}

// HasFutureTag reports whether any activity on this node still holds a
// future stub for fid (as of the last sweep).
func (h *Heap) HasFutureTag(fid ids.FutureID) bool {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		_, ok := s.futTags[fid]
		s.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

// StubTargets returns the distinct remote targets for which owner holds at
// least one live tag, in unspecified order. Tags live in their owner's
// shard, so only that shard is consulted.
func (h *Heap) StubTargets(owner ids.ActivityID) []ids.ActivityID {
	s := h.shardOf(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ids.ActivityID
	for key := range s.tags {
		if key.owner == owner {
			out = append(out, key.target)
		}
	}
	return out
}

// String implements fmt.Stringer with a summary for debugging.
func (h *Heap) String() string {
	cells, roots, tags := 0, 0, 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		cells += len(s.cells)
		roots += len(s.roots)
		tags += len(s.tags)
		s.mu.Unlock()
	}
	return fmt.Sprintf("heap{cells=%d roots=%d tags=%d}", cells, roots, tags)
}
