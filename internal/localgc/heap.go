// Package localgc simulates the per-process local garbage collector the
// paper builds the reference graph on top of (§2.2), without requiring any
// cooperation from the host language runtime — exactly the constraint the
// paper works under with the JVM.
//
// The heap stores passive objects (cells) owned by the activities of one
// process. References to remote activities are materialized as stub cells.
// All stubs held by one activity for the same remote target share a single
// tag cell; the DGC keeps a weak reference to the tag, so the local
// collection of *all* such stubs — and only that — is observable as the tag
// dying at the next sweep. This reproduces the paper's "common tag + weak
// reference" optimization verbatim.
//
// The no-sharing property (§2.1) is enforced at interning time: every cell
// records its owning activity and values are deep-copied across activity
// boundaries by the wire codec before they ever reach the heap.
package localgc

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/wire"
)

// ObjRef is a handle to a heap cell. The zero ObjRef is "nil pointer".
type ObjRef uint64

// RootID names a GC root registration.
type RootID uint64

// cellKind discriminates the heap cell variants.
type cellKind uint8

const (
	kindScalar cellKind = iota + 1
	kindList
	kindDict
	kindStub
	kindTag
	kindFutureStub
	kindFutureTag
)

// cell is one passive object.
type cell struct {
	kind  cellKind
	owner ids.ActivityID
	// scalar payload (kindScalar only).
	scalar wire.Value
	// children for lists; also the single tag child for stubs.
	children []ObjRef
	// keys parallel to children (kindDict only).
	keys []string
	// stub target (kindStub); tag identity (kindTag shares owner+target).
	target ids.ActivityID
	// future identity (kindFutureStub and kindFutureTag). Future stubs
	// also keep the original future value in scalar so Materialize can
	// rebuild it.
	future ids.FutureID
	marked bool
}

// TagDeath reports that activity Owner no longer holds any stub for Target:
// the shared tag cell died at a local collection.
type TagDeath struct {
	Owner  ids.ActivityID
	Target ids.ActivityID
}

// Stats summarizes a collection.
type Stats struct {
	// Live is the number of cells surviving the sweep.
	Live int
	// Freed is the number of cells reclaimed by the sweep.
	Freed int
	// TagDeaths lists the (owner, target) stub tags that died.
	TagDeaths []TagDeath
	// FutureDeaths lists the futures for which no activity on this node
	// holds a future stub anymore (the runtime's future-table sweep
	// polls HasFutureTag instead of consuming these; they are reported
	// for tests and metrics).
	FutureDeaths []ids.FutureID
}

type tagKey struct {
	owner  ids.ActivityID
	target ids.ActivityID
}

// Heap is the object heap of one process. It is safe for concurrent use.
type Heap struct {
	mu       sync.Mutex
	cells    map[ObjRef]*cell
	nextObj  ObjRef
	roots    map[RootID]ObjRef
	nextRoot RootID
	tags     map[tagKey]ObjRef
	futTags  map[ids.FutureID]ObjRef
	weaks    map[ObjRef][]*Weak

	// onTagDeath, if set, is invoked (outside the heap lock) once per tag
	// death at the end of each collection. The DGC driver subscribes here.
	onTagDeath func(TagDeath)
}

// New returns an empty heap. onTagDeath may be nil.
func New(onTagDeath func(TagDeath)) *Heap {
	return &Heap{
		cells:      make(map[ObjRef]*cell),
		roots:      make(map[RootID]ObjRef),
		tags:       make(map[tagKey]ObjRef),
		futTags:    make(map[ids.FutureID]ObjRef),
		weaks:      make(map[ObjRef][]*Weak),
		onTagDeath: onTagDeath,
	}
}

func (h *Heap) alloc(c *cell) ObjRef {
	h.nextObj++
	ref := h.nextObj
	h.cells[ref] = c
	return ref
}

// Intern deep-copies the value graph v into heap cells owned by owner and
// returns the root cell. Every wire.Ref in v becomes a stub cell whose tag
// is shared with all other stubs of the same (owner, target) pair.
func (h *Heap) Intern(owner ids.ActivityID, v wire.Value) ObjRef {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.intern(owner, v)
}

func (h *Heap) intern(owner ids.ActivityID, v wire.Value) ObjRef {
	switch v.Kind() {
	case wire.KindList:
		children := make([]ObjRef, v.Len())
		for i := 0; i < v.Len(); i++ {
			children[i] = h.intern(owner, v.At(i))
		}
		return h.alloc(&cell{kind: kindList, owner: owner, children: children})
	case wire.KindDict:
		keys := v.Keys()
		children := make([]ObjRef, len(keys))
		for i, k := range keys {
			children[i] = h.intern(owner, v.Get(k))
		}
		return h.alloc(&cell{kind: kindDict, owner: owner, keys: keys, children: children})
	case wire.KindRef:
		target, _ := v.AsRef()
		return h.internStub(owner, target)
	case wire.KindFuture:
		return h.internFutureStub(owner, v)
	default:
		return h.alloc(&cell{kind: kindScalar, owner: owner, scalar: v})
	}
}

func (h *Heap) internStub(owner, target ids.ActivityID) ObjRef {
	return h.alloc(&cell{
		kind:     kindStub,
		owner:    owner,
		target:   target,
		children: []ObjRef{h.tagForLocked(owner, target)},
	})
}

// internFutureStub allocates a stub for a first-class future value. It
// pins two tags: the (owner, future-owner) activity tag — holding a
// future references the activity the result belongs to, exactly like
// holding a plain stub — and the node-wide future tag, whose death tells
// the runtime no local activity can name the future anymore.
func (h *Heap) internFutureStub(owner ids.ActivityID, v wire.Value) ObjRef {
	fr, _ := v.AsFutureRef()
	tag := h.tagForLocked(owner, fr.Owner)
	ftag, ok := h.futTags[fr.ID]
	if !ok {
		ftag = h.alloc(&cell{kind: kindFutureTag, future: fr.ID})
		h.futTags[fr.ID] = ftag
	}
	return h.alloc(&cell{
		kind:     kindFutureStub,
		owner:    owner,
		target:   fr.Owner,
		future:   fr.ID,
		scalar:   v,
		children: []ObjRef{tag, ftag},
	})
}

// NewStub allocates a bare stub cell for owner designating target, sharing
// the (owner, target) tag. The runtime uses it for stubs that exist outside
// any interned value (e.g. a reference held by the service loop itself).
func (h *Heap) NewStub(owner, target ids.ActivityID) ObjRef {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.internStub(owner, target)
}

// InternRooted interns v (like Intern) and registers the resulting cell as
// a root in the same critical section, so a concurrent Collect can never
// observe the cell unrooted.
func (h *Heap) InternRooted(owner ids.ActivityID, v wire.Value) (ObjRef, RootID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ref := h.intern(owner, v)
	h.nextRoot++
	h.roots[h.nextRoot] = ref
	return ref, h.nextRoot
}

// NewStubRooted allocates a stub (like NewStub) and roots it atomically.
func (h *Heap) NewStubRooted(owner, target ids.ActivityID) (ObjRef, RootID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ref := h.internStub(owner, target)
	h.nextRoot++
	h.roots[h.nextRoot] = ref
	return ref, h.nextRoot
}

// Materialize rebuilds the wire value stored at ref. Stubs materialize as
// wire.Ref values. Materializing the zero ObjRef or a freed cell yields
// null.
func (h *Heap) Materialize(ref ObjRef) wire.Value {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.materialize(ref)
}

func (h *Heap) materialize(ref ObjRef) wire.Value {
	c, ok := h.cells[ref]
	if !ok {
		return wire.Null()
	}
	switch c.kind {
	case kindScalar:
		return c.scalar
	case kindList:
		elems := make([]wire.Value, len(c.children))
		for i, ch := range c.children {
			elems[i] = h.materialize(ch)
		}
		return wire.List(elems...)
	case kindDict:
		m := make(map[string]wire.Value, len(c.keys))
		for i, k := range c.keys {
			m[k] = h.materialize(c.children[i])
		}
		return wire.Dict(m)
	case kindStub:
		return wire.Ref(c.target)
	case kindFutureStub:
		return c.scalar
	default: // tags have no value representation
		return wire.Null()
	}
}

// AddRoot registers ref as a GC root and returns a handle to remove it.
func (h *Heap) AddRoot(ref ObjRef) RootID {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextRoot++
	id := h.nextRoot
	h.roots[id] = ref
	return id
}

// RemoveRoot drops a root registration. Removing an unknown root is a
// no-op.
func (h *Heap) RemoveRoot(id RootID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.roots, id)
}

// Weak is a weak reference to a heap cell: it does not keep the cell alive
// and observes its collection. This is the mechanism the DGC uses to watch
// stub tags (§2.2).
type Weak struct {
	mu    sync.Mutex
	alive bool
}

// Alive reports whether the referent still exists.
func (w *Weak) Alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *Weak) kill() {
	w.mu.Lock()
	w.alive = false
	w.mu.Unlock()
}

// NewWeak returns a weak reference to ref. If ref does not exist the weak
// reference is born dead.
func (h *Heap) NewWeak(ref ObjRef) *Weak {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := &Weak{}
	if _, ok := h.cells[ref]; !ok {
		return w
	}
	w.alive = true
	h.weaks[ref] = append(h.weaks[ref], w)
	return w
}

// TagFor returns the tag cell shared by owner's stubs of target, creating
// it if needed. The DGC driver takes a weak reference to it.
func (h *Heap) TagFor(owner, target ids.ActivityID) ObjRef {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tagForLocked(owner, target)
}

// RebindStubs rewrites every stub (and future stub) designating old so it
// designates new instead — the heap half of an activity-migration
// redirect. Each rebound stub joins (or creates) the (owner, new) shared
// tag; the old (owner, old) tags are left in place and die at the next
// sweep once nothing references them anymore, firing the ordinary
// tag-death path that removes the old reference-graph edge. The distinct
// owners that held at least one rebound stub are returned so the caller
// can add their (owner → new) edges symmetrically.
func (h *Heap) RebindStubs(old, new ids.ActivityID) []ids.ActivityID {
	if old == new || old.IsNil() || new.IsNil() {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ownerSet := make(map[ids.ActivityID]struct{})
	for _, c := range h.cells {
		switch c.kind {
		case kindStub:
			if c.target != old {
				continue
			}
			c.target = new
			c.children[0] = h.tagForLocked(c.owner, new)
			ownerSet[c.owner] = struct{}{}
		case kindFutureStub:
			if c.target != old {
				continue
			}
			c.target = new
			c.children[0] = h.tagForLocked(c.owner, new)
			if fr, ok := c.scalar.AsFutureRef(); ok && fr.Owner == old {
				fr.Owner = new
				c.scalar = wire.FutureVal(fr)
			}
			ownerSet[c.owner] = struct{}{}
		}
	}
	if len(ownerSet) == 0 {
		return nil
	}
	owners := make([]ids.ActivityID, 0, len(ownerSet))
	for o := range ownerSet {
		owners = append(owners, o)
	}
	return owners
}

// tagForLocked returns (creating if needed) the shared (owner, target)
// tag cell; the caller holds h.mu.
func (h *Heap) tagForLocked(owner, target ids.ActivityID) ObjRef {
	key := tagKey{owner: owner, target: target}
	tag, ok := h.tags[key]
	if !ok {
		tag = h.alloc(&cell{kind: kindTag, owner: owner, target: target})
		h.tags[key] = tag
	}
	return tag
}

// Collect runs a stop-the-world mark-and-sweep and returns its statistics.
// Tag-death callbacks fire after the sweep, outside the heap lock.
func (h *Heap) Collect() Stats {
	h.mu.Lock()

	// Mark.
	for _, c := range h.cells {
		c.marked = false
	}
	stack := make([]ObjRef, 0, len(h.roots))
	for _, ref := range h.roots {
		stack = append(stack, ref)
	}
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, ok := h.cells[ref]
		if !ok || c.marked {
			continue
		}
		c.marked = true
		stack = append(stack, c.children...)
	}

	// Sweep.
	var st Stats
	for ref, c := range h.cells {
		if c.marked {
			st.Live++
			continue
		}
		st.Freed++
		delete(h.cells, ref)
		for _, w := range h.weaks[ref] {
			w.kill()
		}
		delete(h.weaks, ref)
		switch c.kind {
		case kindTag:
			key := tagKey{owner: c.owner, target: c.target}
			delete(h.tags, key)
			st.TagDeaths = append(st.TagDeaths, TagDeath{Owner: c.owner, Target: c.target})
		case kindFutureTag:
			delete(h.futTags, c.future)
			st.FutureDeaths = append(st.FutureDeaths, c.future)
		}
	}
	cb := h.onTagDeath
	h.mu.Unlock()

	if cb != nil {
		for _, d := range st.TagDeaths {
			cb(d)
		}
	}
	return st
}

// NumCells returns the current number of cells (for tests and metrics).
func (h *Heap) NumCells() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.cells)
}

// NumRoots returns the current number of registered roots.
func (h *Heap) NumRoots() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.roots)
}

// HasTag reports whether owner currently holds a live tag for target, i.e.
// whether at least one stub (owner → target) existed at the last sweep.
func (h *Heap) HasTag(owner, target ids.ActivityID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.tags[tagKey{owner: owner, target: target}]
	return ok
}

// HasFutureTag reports whether any activity on this node still holds a
// future stub for fid (as of the last sweep).
func (h *Heap) HasFutureTag(fid ids.FutureID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.futTags[fid]
	return ok
}

// StubTargets returns the distinct remote targets for which owner holds at
// least one live tag, in unspecified order.
func (h *Heap) StubTargets(owner ids.ActivityID) []ids.ActivityID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []ids.ActivityID
	for key := range h.tags {
		if key.owner == owner {
			out = append(out, key.target)
		}
	}
	return out
}

// String implements fmt.Stringer with a summary for debugging.
func (h *Heap) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return fmt.Sprintf("heap{cells=%d roots=%d tags=%d}", len(h.cells), len(h.roots), len(h.tags))
}
