package localgc

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
	"repro/internal/wire"
)

var (
	owner  = ids.ActivityID{Node: 1, Seq: 1}
	owner2 = ids.ActivityID{Node: 1, Seq: 2}
	remote = ids.ActivityID{Node: 2, Seq: 1}
)

func TestInternMaterializeRoundTrip(t *testing.T) {
	h := New(nil)
	v := wire.Dict(map[string]wire.Value{
		"n":   wire.Int(7),
		"xs":  wire.List(wire.String("a"), wire.Float(1.5)),
		"ref": wire.Ref(remote),
	})
	ref := h.Intern(owner, v)
	got := h.Materialize(ref)
	if !got.Equal(v) {
		t.Fatalf("materialize mismatch:\n got %v\nwant %v", got, v)
	}
}

func TestMaterializeUnknownIsNull(t *testing.T) {
	h := New(nil)
	if !h.Materialize(0).IsNull() || !h.Materialize(999).IsNull() {
		t.Fatal("materializing nil/unknown refs must yield null")
	}
}

func TestCollectFreesUnrooted(t *testing.T) {
	h := New(nil)
	ref := h.Intern(owner, wire.List(wire.Int(1), wire.Int(2)))
	_ = ref
	st := h.Collect()
	if st.Live != 0 {
		t.Fatalf("Live = %d, want 0", st.Live)
	}
	if st.Freed != 3 { // list cell + 2 scalar cells
		t.Fatalf("Freed = %d, want 3", st.Freed)
	}
}

func TestCollectKeepsRooted(t *testing.T) {
	h := New(nil)
	ref := h.Intern(owner, wire.List(wire.Int(1), wire.Int(2)))
	root := h.AddRoot(ref)
	st := h.Collect()
	if st.Freed != 0 || st.Live != 3 {
		t.Fatalf("with root: freed=%d live=%d, want 0/3", st.Freed, st.Live)
	}
	h.RemoveRoot(root)
	st = h.Collect()
	if st.Freed != 3 {
		t.Fatalf("after root removal: freed=%d, want 3", st.Freed)
	}
}

func TestSharedTagAcrossStubs(t *testing.T) {
	h := New(nil)
	// Two distinct stubs of the same remote target for the same owner.
	r1 := h.Intern(owner, wire.Ref(remote))
	r2 := h.Intern(owner, wire.Ref(remote))
	root1 := h.AddRoot(r1)
	root2 := h.AddRoot(r2)
	tag := h.TagFor(owner, remote)
	w := h.NewWeak(tag)

	// Dropping one stub must not kill the tag.
	h.RemoveRoot(root1)
	h.Collect()
	if !w.Alive() {
		t.Fatal("tag died while one stub is still live")
	}
	if !h.HasTag(owner, remote) {
		t.Fatal("HasTag = false while one stub is live")
	}

	// Dropping the last stub kills the tag.
	h.RemoveRoot(root2)
	st := h.Collect()
	if w.Alive() {
		t.Fatal("tag still alive after all stubs were collected")
	}
	if len(st.TagDeaths) != 1 || st.TagDeaths[0] != (TagDeath{Owner: owner, Target: remote}) {
		t.Fatalf("TagDeaths = %v, want exactly {owner, remote}", st.TagDeaths)
	}
}

func TestTagsArePerOwner(t *testing.T) {
	// The no-sharing property: owner and owner2 each get their own tag for
	// the same remote target.
	h := New(nil)
	r1 := h.Intern(owner, wire.Ref(remote))
	r2 := h.Intern(owner2, wire.Ref(remote))
	h.AddRoot(r1)
	root2 := h.AddRoot(r2)
	if h.TagFor(owner, remote) == h.TagFor(owner2, remote) {
		t.Fatal("two owners shared a tag cell; violates no-sharing")
	}
	h.RemoveRoot(root2)
	st := h.Collect()
	if len(st.TagDeaths) != 1 || st.TagDeaths[0].Owner != owner2 {
		t.Fatalf("TagDeaths = %v, want only owner2's tag", st.TagDeaths)
	}
	if !h.HasTag(owner, remote) {
		t.Fatal("owner's tag must survive")
	}
}

func TestTagDeathCallback(t *testing.T) {
	var deaths []TagDeath
	h := New(func(d TagDeath) { deaths = append(deaths, d) })
	ref := h.Intern(owner, wire.Ref(remote))
	root := h.AddRoot(ref)
	h.Collect()
	if len(deaths) != 0 {
		t.Fatalf("premature tag death: %v", deaths)
	}
	h.RemoveRoot(root)
	h.Collect()
	if len(deaths) != 1 || deaths[0].Target != remote {
		t.Fatalf("deaths = %v, want one death for remote", deaths)
	}
}

func TestStubTargets(t *testing.T) {
	h := New(nil)
	other := ids.ActivityID{Node: 3, Seq: 1}
	h.AddRoot(h.Intern(owner, wire.List(wire.Ref(remote), wire.Ref(other))))
	h.Collect()
	targets := h.StubTargets(owner)
	if len(targets) != 2 {
		t.Fatalf("StubTargets = %v, want 2 targets", targets)
	}
}

func TestNewWeakOnUnknownIsDead(t *testing.T) {
	h := New(nil)
	if h.NewWeak(12345).Alive() {
		t.Fatal("weak ref to unknown cell must be dead")
	}
}

func TestCycleInHeapIsCollected(t *testing.T) {
	// The local GC is tracing, so heap-internal cycles are reclaimed. Build
	// one manually via two lists referring to each other.
	h := New(nil)
	a := h.Intern(owner, wire.List())
	b := h.Intern(owner, wire.List())
	s := h.shardOf(owner) // same owner: a and b live in one shard
	s.mu.Lock()
	s.cells[a].children = append(s.cells[a].children, b)
	s.cells[b].children = append(s.cells[b].children, a)
	s.mu.Unlock()
	st := h.Collect()
	if st.Freed != 2 {
		t.Fatalf("freed = %d, want 2 (cycle must be collected)", st.Freed)
	}
}

// TestSweepSoundnessRandom is a property test: after a collection, every
// rooted value must still materialize identically, and unrooted interned
// graphs must be gone.
func TestSweepSoundnessRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		h := New(nil)
		type rooted struct {
			ref ObjRef
			val wire.Value
		}
		var keep []rooted
		for i := 0; i < 20; i++ {
			v := randomValue(r, 3)
			ref := h.Intern(owner, v)
			if r.Intn(2) == 0 {
				h.AddRoot(ref)
				keep = append(keep, rooted{ref, v})
			}
		}
		h.Collect()
		for _, k := range keep {
			if got := h.Materialize(k.ref); !got.Equal(k.val) {
				t.Fatalf("iter %d: rooted value corrupted by sweep:\n got %v\nwant %v", iter, got, k.val)
			}
		}
		// A second collect with no changes must free nothing.
		if st := h.Collect(); st.Freed != 0 {
			t.Fatalf("iter %d: idempotence violated, freed %d", iter, st.Freed)
		}
	}
}

func randomValue(r *rand.Rand, depth int) wire.Value {
	max := 6
	if depth <= 0 {
		max = 4
	}
	switch r.Intn(max) {
	case 0:
		return wire.Int(r.Int63n(1000))
	case 1:
		return wire.String("s")
	case 2:
		return wire.Ref(ids.ActivityID{Node: ids.NodeID(1 + r.Intn(3)), Seq: uint32(1 + r.Intn(3))})
	case 3:
		return wire.Null()
	case 4:
		n := r.Intn(3)
		elems := make([]wire.Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return wire.List(elems...)
	default:
		m := map[string]wire.Value{}
		for i := 0; i < r.Intn(3); i++ {
			m[string(rune('a'+i))] = randomValue(r, depth-1)
		}
		return wire.Dict(m)
	}
}

func TestHeapString(t *testing.T) {
	h := New(nil)
	h.AddRoot(h.Intern(owner, wire.Int(1)))
	if h.String() == "" {
		t.Fatal("String() must not be empty")
	}
	if h.NumCells() != 1 || h.NumRoots() != 1 {
		t.Fatalf("NumCells=%d NumRoots=%d, want 1/1", h.NumCells(), h.NumRoots())
	}
}

// TestFutureStubTags pins the future-stub behavior: interning a future
// value pins both the (owner → future-owner) activity tag and the
// node-wide future tag; dropping every pin kills both at the next sweep,
// and Materialize rebuilds the original future value while pinned.
func TestFutureStubTags(t *testing.T) {
	var tagDeaths []TagDeath
	h := New(func(d TagDeath) { tagDeaths = append(tagDeaths, d) })

	owner := ids.ActivityID{Node: 1, Seq: 1}
	futOwner := ids.ActivityID{Node: 2, Seq: 5}
	fid := ids.FutureID{Node: 2, Seq: 9}
	fv := wire.FutureVal(wire.FutureRef{ID: fid, Owner: futOwner})
	ref, root := h.InternRooted(owner, wire.List(wire.Int(1), fv))

	h.Collect()
	if !h.HasTag(owner, futOwner) {
		t.Fatal("future stub did not pin the owner-activity tag")
	}
	if !h.HasFutureTag(fid) {
		t.Fatal("future stub did not pin the future tag")
	}
	if got := h.Materialize(ref); !got.At(1).Equal(fv) {
		t.Fatalf("materialized %v", got)
	}

	h.RemoveRoot(root)
	st := h.Collect()
	if h.HasTag(owner, futOwner) || h.HasFutureTag(fid) {
		t.Fatal("tags survived the pin drop")
	}
	if len(st.FutureDeaths) != 1 || st.FutureDeaths[0] != fid {
		t.Fatalf("future deaths = %v", st.FutureDeaths)
	}
	found := false
	for _, d := range tagDeaths {
		if d == (TagDeath{Owner: owner, Target: futOwner}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no activity tag death for the future owner: %v", tagDeaths)
	}
}
