package loadgen

import (
	"testing"
	"time"
)

// TestHistogramQuantiles records a known distribution and checks the
// digest's quantiles land in the right buckets (≤ 6.25% relative error by
// construction of the log-linear bucketing).
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Microsecond)
	}
	s := h.summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(name string, got, want float64) {
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("%s = %.1fµs, want ≈ %.1fµs", name, got, want)
		}
	}
	check("p50", s.P50Micros, 500)
	check("p90", s.P90Micros, 900)
	check("p99", s.P99Micros, 990)
	check("mean", s.MeanMicros, 500.5)
	if s.MaxMicros != 1000 {
		t.Fatalf("max = %.1f", s.MaxMicros)
	}
}

// TestHistogramMerge checks per-worker histograms fold losslessly.
func TestHistogramMerge(t *testing.T) {
	var a, b histogram
	for i := 0; i < 100; i++ {
		a.record(10 * time.Microsecond)
		b.record(1000 * time.Microsecond)
	}
	a.merge(&b)
	if a.total != 200 {
		t.Fatalf("total = %d", a.total)
	}
	s := a.summary()
	if s.P50Micros > 100 || s.P90Micros < 500 {
		t.Fatalf("merged digest off: %+v", s)
	}
}

// TestBucketMonotone sanity-checks the bucket mapping: indices and lower
// bounds are monotone over a wide range.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for us := 0; us < 1<<20; us = us*9/8 + 1 {
		idx := bucketOf(time.Duration(us) * time.Microsecond)
		if idx < prev {
			t.Fatalf("bucketOf(%dµs) = %d < previous %d", us, idx, prev)
		}
		if low := bucketLow(idx); low > time.Duration(us)*time.Microsecond {
			t.Fatalf("bucketLow(%d) = %v above the value %dµs that mapped there", idx, low, us)
		}
		prev = idx
	}
}

// TestRunClosedLoopSim smoke-tests the engine end to end on the simnet
// backend: a short mixed run must complete operations of every class
// without errors and account traffic.
func TestRunClosedLoopSim(t *testing.T) {
	res, err := Run(Config{
		Backend:       "sim",
		Nodes:         2,
		ActorsPerNode: 2,
		Workers:       4,
		Duration:      200 * time.Millisecond,
		Mix:           Mix{Call: 6, Broadcast: 1, Churn: 1, Pipeline: 2},
		BatchWindow:   100 * time.Microsecond,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	if res.Calls.Errors+res.Broadcasts.Errors+res.Churns.Errors+res.Pipelines.Errors != 0 {
		t.Fatalf("errors: %+v %+v %+v %+v", res.Calls, res.Broadcasts, res.Churns, res.Pipelines)
	}
	if res.Calls.Ops == 0 || res.Broadcasts.Ops == 0 || res.Churns.Ops == 0 || res.Pipelines.Ops == 0 {
		t.Fatalf("mix incomplete: calls=%d broadcasts=%d churns=%d pipelines=%d",
			res.Calls.Ops, res.Broadcasts.Ops, res.Churns.Ops, res.Pipelines.Ops)
	}
	if res.Traffic["app"].Messages == 0 || res.Traffic["future"].Messages == 0 {
		t.Fatalf("no traffic accounted: %+v", res.Traffic)
	}
	if res.Calls.Latency.P50Micros <= 0 {
		t.Fatalf("empty latency digest: %+v", res.Calls.Latency)
	}
}

// TestRunOpenLoopSim smoke-tests the open-loop arrival path.
func TestRunOpenLoopSim(t *testing.T) {
	res, err := Run(Config{
		Backend:       "sim",
		Nodes:         2,
		ActorsPerNode: 2,
		RatePerSec:    2000,
		Duration:      200 * time.Millisecond,
		DisableDGC:    true,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OpenLoop {
		t.Fatal("open loop not recorded")
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
}

// TestRunNodeKillChaos smoke-tests the elastic-cluster churn chaos:
// nodes join, serve one call, and are hard-killed mid-run while the
// steady call workload rides through against the long-lived actors.
func TestRunNodeKillChaos(t *testing.T) {
	res, err := Run(Config{
		Backend:       "sim",
		Nodes:         2,
		ActorsPerNode: 2,
		Workers:       4,
		Duration:      400 * time.Millisecond,
		Mix:           Mix{Call: 1},
		NodeKillEvery: 50 * time.Millisecond,
		OpTimeout:     5 * time.Second,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeKills == 0 {
		t.Fatal("chaos ran no node lifecycles")
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	if res.Calls.Errors*2 > res.Calls.Ops {
		t.Fatalf("node churn drowned the run: %d errors of %d ops", res.Calls.Errors, res.Calls.Ops)
	}
}

// TestRunTCPWithChaos smoke-tests the tcp backend under periodic
// connection drops: operations may fail transiently but the run must
// complete and most operations must succeed (reconnect works).
func TestRunTCPWithChaos(t *testing.T) {
	res, err := Run(Config{
		Backend:        "tcp",
		Nodes:          2,
		ActorsPerNode:  2,
		Workers:        4,
		Duration:       300 * time.Millisecond,
		Mix:            Mix{Call: 1},
		BatchWindow:    100 * time.Microsecond,
		DisableDGC:     true,
		DropConnsEvery: 50 * time.Millisecond,
		OpTimeout:      time.Second,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	if res.Calls.Errors*2 > res.Calls.Ops {
		t.Fatalf("chaos drowned the run: %d errors of %d ops", res.Calls.Errors, res.Calls.Ops)
	}
}

// TestRunRestartChaos smoke-tests the crash-restart arm: the durable
// node dies and recovers on a short period while the steady-state lanes
// keep running, and no registered identity may be lost — the invariant
// the churn-restart suite scenario is gated on.
func TestRunRestartChaos(t *testing.T) {
	res, err := Run(Config{
		Backend:       "sim",
		Nodes:         2,
		ActorsPerNode: 2,
		Workers:       4,
		Duration:      600 * time.Millisecond,
		Mix:           Mix{Call: 3, Churn: 1},
		RestartEvery:  150 * time.Millisecond,
		OpTimeout:     5 * time.Second,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("chaos ran no restart cycles")
	}
	if res.LostIdentities != 0 {
		t.Fatalf("crash-restart lost %d registered identities", res.LostIdentities)
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
	if _, err := Run(Config{Backend: "tcp", RestartEvery: time.Second}); err == nil {
		t.Fatal("restart chaos on tcp should be refused")
	}
}
