package loadgen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/active"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

// Mix weights the workload's operation classes. Zero-valued mixes default
// to calls only.
type Mix struct {
	// Call is the weight of single typed request/reply round-trips.
	Call int `json:"call"`
	// Broadcast is the weight of group fan-outs (Broadcast + WaitAll).
	Broadcast int `json:"broadcast"`
	// Churn is the weight of DGC churn: spawn an activity, call it once,
	// release it into the collector's hands.
	Churn int `json:"churn"`
	// Pipeline is the weight of chained forwarded-future calls: one
	// request into a 4-stage chain where every stage forwards the
	// downstream future instead of waiting (WIRE.md §6), resolved only at
	// the caller.
	Pipeline int `json:"pipeline"`
}

func (m Mix) normalized() Mix {
	if m.Call <= 0 && m.Broadcast <= 0 && m.Churn <= 0 && m.Pipeline <= 0 {
		return Mix{Call: 1}
	}
	return m
}

// Config parameterizes one load-generation run.
type Config struct {
	// Backend selects the substrate: "sim" (in-memory) or "tcp" (real
	// loopback TCP). Defaults to "sim".
	Backend string `json:"backend"`
	// Nodes is the number of worker nodes hosting echo actors (the caller
	// runs on its own extra node). Defaults to 4.
	Nodes int `json:"nodes"`
	// ActorsPerNode is the number of echo activities per worker node.
	// Defaults to 4.
	ActorsPerNode int `json:"actors_per_node"`
	// GroupSize is the fan-out width of broadcast operations. Defaults to
	// min(16, total actors).
	GroupSize int `json:"group_size"`
	// Workers is the closed-loop concurrency (ignored in open loop).
	// Defaults to 2×GOMAXPROCS.
	Workers int `json:"workers"`
	// RatePerSec switches to open-loop arrival at that rate: operations
	// are launched on schedule regardless of completions (the arrival
	// process of a public service), and latency includes any queueing the
	// system builds up. 0 keeps the closed loop.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Duration is the measured run length. Defaults to 2s.
	Duration time.Duration `json:"-"`
	// Mix weights the operation classes.
	Mix Mix `json:"mix"`
	// PayloadBytes sizes the opaque payload carried by calls and
	// broadcasts. Defaults to 64.
	PayloadBytes int `json:"payload_bytes"`
	// BatchWindow/BatchBytes configure the runtime's batching path
	// (Config.BatchWindow of the runtime; zero = batching off).
	BatchWindow time.Duration `json:"-"`
	// BatchBytes caps one batch frame's payload.
	BatchBytes int `json:"batch_bytes,omitempty"`
	// DisableDGC turns the collector off to isolate the messaging path.
	DisableDGC bool `json:"disable_dgc,omitempty"`
	// DropConnsEvery, when positive on the tcp backend, forcibly drops
	// every established connection at that period — the soak harness's
	// transient-failure chaos.
	DropConnsEvery time.Duration `json:"-"`
	// Cluster enables the elastic cluster runtime (membership, failure
	// detection) for the run. Implied by NodeKillEvery.
	Cluster bool `json:"cluster,omitempty"`
	// NodeKillEvery, when positive, runs node churn chaos at that period:
	// a fresh node joins the cluster, hosts an activity, serves one call,
	// and then dies — hard-killed at the network level on the sim backend
	// (exercising failure detection and ErrNodeDead cleanup), crashed on
	// tcp. The steady-state workload must ride through undisturbed.
	NodeKillEvery time.Duration `json:"-"`
	// OpTimeout bounds one operation's wait (a lost future update, e.g.
	// under connection chaos, then counts as an error instead of wedging a
	// worker). Defaults to 30s.
	OpTimeout time.Duration `json:"-"`
	// Seed makes operation interleaving reproducible.
	Seed int64 `json:"seed"`
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = "sim"
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.ActorsPerNode <= 0 {
		c.ActorsPerNode = 4
	}
	total := c.Nodes * c.ActorsPerNode
	if c.GroupSize <= 0 || c.GroupSize > total {
		c.GroupSize = total
		if c.GroupSize > 16 {
			c.GroupSize = 16
		}
	}
	if c.Workers <= 0 {
		c.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 64
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NodeKillEvery > 0 {
		c.Cluster = true
	}
	c.Mix = c.Mix.normalized()
	return c
}

// OpStats aggregates one operation class.
type OpStats struct {
	// Ops is the number of completed operations.
	Ops uint64 `json:"ops"`
	// Errors is the number of failed operations.
	Errors uint64 `json:"errors"`
	// Latency digests the class's latency histogram.
	Latency LatencySummary `json:"latency"`
}

// ClassTraffic is the accounted traffic of one transport class.
type ClassTraffic struct {
	// Bytes is the total accounted payload bytes.
	Bytes uint64 `json:"bytes"`
	// Messages is the number of accounted payloads.
	Messages uint64 `json:"messages"`
}

// Result is the machine-readable outcome of one run.
type Result struct {
	// Config echoes the effective configuration.
	Config Config `json:"config"`
	// OpenLoop records whether arrival was open-loop.
	OpenLoop bool `json:"open_loop"`
	// Batched records whether the batching path was enabled.
	Batched bool `json:"batched"`
	// BatchWindowMicros is the batching window in microseconds (0 = off).
	BatchWindowMicros int64 `json:"batch_window_us"`
	// DurationSeconds is the measured wall time.
	DurationSeconds float64 `json:"duration_s"`
	// TotalOps counts completed operations across classes.
	TotalOps uint64 `json:"total_ops"`
	// Throughput is completed operations per second.
	Throughput float64 `json:"throughput_ops_per_s"`
	// MessagesPerSec is accounted transport messages per second.
	MessagesPerSec float64 `json:"messages_per_s"`
	// Calls, Broadcasts, Churns and Pipelines digest the per-class
	// measurements.
	Calls      OpStats `json:"calls"`
	Broadcasts OpStats `json:"broadcasts"`
	Churns     OpStats `json:"churns"`
	Pipelines  OpStats `json:"pipelines"`
	// Traffic maps transport class names to accounted totals.
	Traffic map[string]ClassTraffic `json:"traffic"`
	// LiveActivities is the live count at the end (churn backlog the DGC
	// still owes).
	LiveActivities int `json:"live_activities"`
	// NodeKills is how many chaos node lifecycles (join, serve, die) ran.
	NodeKills uint64 `json:"node_kills,omitempty"`
	// CollectedActivities is how many the DGC reclaimed during the run.
	CollectedActivities int `json:"collected_activities"`
}

// echoReq/echoResp are the workload's wire shapes.
type echoReq struct {
	Seq     int64  `wire:"seq"`
	Payload []byte `wire:"payload"`
}

type echoResp struct {
	Seq  int64 `wire:"seq"`
	Echo int64 `wire:"echo"`
}

// opKind indexes the per-worker stats.
type opKind int

const (
	opCall opKind = iota
	opBroadcast
	opChurn
	opPipeline
	numOps
)

// workerStats is one worker's (or one open-loop shard's) private tally.
type workerStats struct {
	hist   [numOps]histogram
	ops    [numOps]uint64
	errors [numOps]uint64
}

// Run executes one load-generation run and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	envCfg := active.Config{
		DisableDGC:  cfg.DisableDGC,
		BatchWindow: cfg.BatchWindow,
		BatchBytes:  cfg.BatchBytes,
		Cluster:     active.ClusterConfig{Enabled: cfg.Cluster},
	}
	var dropper interface{ DropConnections() }
	switch cfg.Backend {
	case "sim":
	case "tcp":
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			return Result{}, err
		}
		envCfg.Transport = tr
		dropper = tr
	default:
		return Result{}, fmt.Errorf("loadgen: unknown backend %q", cfg.Backend)
	}
	env := active.NewEnv(envCfg)
	defer env.Close()

	// Topology: one caller node plus worker nodes full of echo actors;
	// the caller re-anchors a handle per actor so every operation crosses
	// the transport.
	caller := env.NewNode()
	svc := active.NewService(active.Method("echo", func(_ *active.Context, req echoReq) (echoResp, error) {
		return echoResp{Seq: req.Seq, Echo: int64(len(req.Payload))}, nil
	}))
	workerNodes := make([]*active.Node, cfg.Nodes)
	for i := range workerNodes {
		workerNodes[i] = env.NewNode()
	}
	var stubs []active.Stub[echoReq, echoResp]
	var handles []*active.Handle
	for ni, n := range workerNodes {
		for a := 0; a < cfg.ActorsPerNode; a++ {
			local := n.NewActive(fmt.Sprintf("echo-%d-%d", ni, a), svc)
			defer local.Release()
			remote, err := caller.HandleFor(local.Ref())
			if err != nil {
				return Result{}, err
			}
			defer remote.Release()
			handles = append(handles, remote)
			stubs = append(stubs, active.NewStub[echoReq, echoResp](remote, "echo"))
		}
	}
	group := active.NewGroup[echoReq, echoResp]("echo", handles[:cfg.GroupSize]...)

	// The forwarded-future pipeline: a 4-stage chain spread across the
	// worker nodes. Every non-final stage calls downstream and returns
	// the unresolved future; the caller's single wait resolves through
	// the flattened chain.
	const pipeStages = 4
	stageSvc := active.NewService(
		active.Method("wire", func(ctx *active.Context, next wire.Value) (struct{}, error) {
			ctx.Store("next", next)
			return struct{}{}, nil
		}),
		active.Method("pipe", func(ctx *active.Context, req echoReq) (wire.Value, error) {
			next := ctx.Load("next")
			if next.IsNull() {
				resp, err := wire.Marshal(echoResp{Seq: req.Seq, Echo: int64(len(req.Payload))})
				return resp, err
			}
			fut, err := active.CallTyped[echoResp](ctx, next, "pipe", req)
			if err != nil {
				return wire.Null(), err
			}
			return wire.Marshal(fut)
		}))
	stageHandles := make([]*active.Handle, pipeStages)
	for i := range stageHandles {
		stageHandles[i] = workerNodes[i%len(workerNodes)].NewActive(
			fmt.Sprintf("pipe-stage-%d", i), stageSvc)
		defer stageHandles[i].Release()
	}
	for i, h := range stageHandles {
		next := wire.Null()
		if i < pipeStages-1 {
			next = stageHandles[i+1].Ref()
		}
		if _, err := h.CallSync("wire", next, 10*time.Second); err != nil {
			return Result{}, err
		}
	}
	pipeHead, err := caller.HandleFor(stageHandles[0].Ref())
	if err != nil {
		return Result{}, err
	}
	defer pipeHead.Release()
	pipeStub := active.NewStub[echoReq, echoResp](pipeHead, "pipe")

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	mix := cfg.Mix
	weightTotal := mix.Call + mix.Broadcast + mix.Churn + mix.Pipeline

	var seq atomic.Int64
	churnNode := func(rng *rand.Rand) *active.Node {
		return workerNodes[rng.Intn(len(workerNodes))]
	}
	runOp := func(rng *rand.Rand, st *workerStats) {
		k := opCall
		switch w := rng.Intn(weightTotal); {
		case w < mix.Call:
			k = opCall
		case w < mix.Call+mix.Broadcast:
			k = opBroadcast
		case w < mix.Call+mix.Broadcast+mix.Churn:
			k = opChurn
		default:
			k = opPipeline
		}
		req := echoReq{Seq: seq.Add(1), Payload: payload}
		start := time.Now()
		var err error
		switch k {
		case opCall:
			_, err = stubs[rng.Intn(len(stubs))].CallSync(req, cfg.OpTimeout)
		case opBroadcast:
			var fg *active.FutureGroup[echoResp]
			if fg, err = group.Broadcast(req); err == nil {
				_, err = fg.WaitAll(cfg.OpTimeout)
			}
		case opChurn:
			// Spawn, reference, call, release: the lifecycle that feeds
			// the DGC a steady diet of fresh edges and fresh garbage.
			h := churnNode(rng).NewActive("churn", svc)
			var hc *active.Handle
			if hc, err = caller.HandleFor(h.Ref()); err == nil {
				_, err = active.NewStub[echoReq, echoResp](hc, "echo").CallSync(req, cfg.OpTimeout)
				hc.Release()
			}
			h.Release()
		case opPipeline:
			// One item through the 4-stage forwarded-future chain: the
			// caller's single wait resolves through the flattening
			// machinery and every hop's future-update propagation.
			var resp echoResp
			if resp, err = pipeStub.CallSync(req, cfg.OpTimeout); err == nil && resp.Seq != req.Seq {
				err = fmt.Errorf("loadgen: pipeline echoed seq %d, want %d", resp.Seq, req.Seq)
			}
		}
		if err != nil {
			// Failed operations count separately and stay out of the
			// latency digest: a timed-out call would otherwise both
			// inflate throughput and poison the tail percentiles.
			st.errors[k]++
			return
		}
		st.hist[k].record(time.Since(start))
		st.ops[k]++
	}

	env.Network().ResetCounters()
	collectedBefore := env.Stats().Collected
	var collectedBeforeTotal int
	for _, c := range collectedBefore {
		collectedBeforeTotal += c
	}

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	var nodeKills atomic.Uint64
	if cfg.NodeKillEvery > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			t := time.NewTicker(cfg.NodeKillEvery)
			defer t.Stop()
			killer, _ := env.Network().(*simnet.Network)
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// One full elastic lifecycle: join a node, host an
					// activity, serve one call across the transport, die.
					victim := env.NewNode()
					h := victim.NewActive("chaos-victim", svc)
					if hc, err := caller.HandleFor(h.Ref()); err == nil {
						req := echoReq{Seq: seq.Add(1), Payload: payload}
						_, _ = active.NewStub[echoReq, echoResp](hc, "echo").CallSync(req, cfg.OpTimeout)
						hc.Release()
					}
					h.Release()
					if killer != nil {
						// Hard kill first: the survivors' heartbeats toward
						// the victim now fail, driving the suspect→dead path
						// and the ErrNodeDead cleanup fan-out.
						killer.KillNode(victim.ID())
					}
					victim.Crash()
					nodeKills.Add(1)
				}
			}
		}()
	}
	if dropper != nil && cfg.DropConnsEvery > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			t := time.NewTicker(cfg.DropConnsEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					dropper.DropConnections()
				}
			}
		}()
	}

	start := time.Now()
	var statsList []*workerStats
	if cfg.RatePerSec > 0 {
		statsList = runOpenLoop(cfg, stop, runOp)
	} else {
		statsList = runClosedLoop(cfg, stop, runOp)
	}
	elapsed := time.Since(start)
	close(stop)
	chaosWG.Wait()

	// Merge the per-worker tallies.
	var merged workerStats
	for _, st := range statsList {
		for k := opKind(0); k < numOps; k++ {
			merged.hist[k].merge(&st.hist[k])
			merged.ops[k] += st.ops[k]
			merged.errors[k] += st.errors[k]
		}
	}
	snap := env.Network().Snapshot()

	res := Result{
		Config:            cfg,
		OpenLoop:          cfg.RatePerSec > 0,
		Batched:           cfg.BatchWindow > 0,
		BatchWindowMicros: int64(cfg.BatchWindow / time.Microsecond),
		DurationSeconds:   elapsed.Seconds(),
		Traffic:           make(map[string]ClassTraffic),
		LiveActivities:    env.LiveActivities(),
		NodeKills:         nodeKills.Load(),
	}
	opStats := func(k opKind) OpStats {
		return OpStats{Ops: merged.ops[k], Errors: merged.errors[k], Latency: merged.hist[k].summary()}
	}
	res.Calls = opStats(opCall)
	res.Broadcasts = opStats(opBroadcast)
	res.Churns = opStats(opChurn)
	res.Pipelines = opStats(opPipeline)
	res.TotalOps = merged.ops[opCall] + merged.ops[opBroadcast] + merged.ops[opChurn] + merged.ops[opPipeline]
	if elapsed > 0 {
		res.Throughput = float64(res.TotalOps) / elapsed.Seconds()
	}
	var msgs uint64
	for class, b := range snap.Bytes {
		msgs += snap.Messages[class]
		res.Traffic[class.String()] = ClassTraffic{Bytes: b, Messages: snap.Messages[class]}
	}
	if elapsed > 0 {
		res.MessagesPerSec = float64(msgs) / elapsed.Seconds()
	}
	var collectedTotal int
	for _, c := range env.Stats().Collected {
		collectedTotal += c
	}
	res.CollectedActivities = collectedTotal - collectedBeforeTotal
	return res, nil
}

// runClosedLoop drives Workers goroutines that each issue operations
// back-to-back until the duration elapses: the throughput-probe shape.
func runClosedLoop(cfg Config, stop <-chan struct{}, runOp func(*rand.Rand, *workerStats)) []*workerStats {
	deadline := time.Now().Add(cfg.Duration)
	stats := make([]*workerStats, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		st := &workerStats{}
		stats[w] = st
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				runOp(rng, st)
			}
		}()
	}
	wg.Wait()
	return stats
}

// runOpenLoop launches operations on an arrival schedule regardless of
// completions (bounded by a generous in-flight cap so a stalled system
// sheds load instead of leaking goroutines): the latency-under-rate
// shape. Shed arrivals are counted as errors of the call class.
func runOpenLoop(cfg Config, stop <-chan struct{}, runOp func(*rand.Rand, *workerStats)) []*workerStats {
	interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	const maxInFlight = 4096
	sem := make(chan struct{}, maxInFlight)
	deadline := time.Now().Add(cfg.Duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var mu sync.Mutex
	var stats []*workerStats
	var wg sync.WaitGroup
	var arrival atomic.Int64
	var shed uint64
	for time.Now().Before(deadline) {
		<-ticker.C
		select {
		case sem <- struct{}{}:
		default:
			shed++
			continue
		}
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			defer func() { <-sem }()
			st := &workerStats{}
			rng := rand.New(rand.NewSource(cfg.Seed + n))
			runOp(rng, st)
			mu.Lock()
			stats = append(stats, st)
			mu.Unlock()
		}(arrival.Add(1))
	}
	wg.Wait()
	if shed > 0 {
		st := &workerStats{}
		st.errors[opCall] += shed
		stats = append(stats, st)
	}
	return stats
}
