package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/active"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

// Mix weights the workload's operation classes. Zero-valued mixes default
// to calls only.
type Mix struct {
	// Call is the weight of single typed request/reply round-trips.
	Call int `json:"call"`
	// Broadcast is the weight of group fan-outs (Broadcast + WaitAll).
	Broadcast int `json:"broadcast"`
	// Churn is the weight of DGC churn: spawn an activity, call it once,
	// release it into the collector's hands.
	Churn int `json:"churn"`
	// Pipeline is the weight of chained forwarded-future calls: one
	// request into a 4-stage chain where every stage forwards the
	// downstream future instead of waiting (WIRE.md §6), resolved only at
	// the caller.
	Pipeline int `json:"pipeline"`
	// Migrate is the weight of live-migration lifecycles: spawn a
	// migratable activity, call it, migrate it to another node, and call
	// it again through the now-stale handle — the forwarder, redirect and
	// sharded-directory paths all under load (WIRE.md §7, §9).
	Migrate int `json:"migrate,omitempty"`
	// Send is the weight of one-way pings: fire-and-forget typed sends
	// with a synchronous barrier every SendWindow-th operation, so the
	// serve side provably keeps pace with the enqueue side. This is the
	// asynchronous-messaging floor of the runtime — the rate one core can
	// push requests through marshal, queue and serve without waiting for
	// replies.
	Send int `json:"send,omitempty"`
}

func (m Mix) normalized() Mix {
	if m.Call <= 0 && m.Broadcast <= 0 && m.Churn <= 0 && m.Pipeline <= 0 && m.Migrate <= 0 && m.Send <= 0 {
		return Mix{Call: 1}
	}
	return m
}

// Config parameterizes one load-generation run.
type Config struct {
	// Name labels the scenario in suite documents; the perf comparator
	// matches named scenarios by name instead of (backend, batching).
	Name string `json:"name,omitempty"`
	// Backend selects the substrate: "sim" (in-memory) or "tcp" (real
	// loopback TCP). Defaults to "sim".
	Backend string `json:"backend"`
	// Nodes is the number of worker nodes hosting echo actors (the caller
	// runs on its own extra node). Defaults to 4.
	Nodes int `json:"nodes"`
	// ActorsPerNode is the number of echo activities per worker node.
	// Defaults to 4.
	ActorsPerNode int `json:"actors_per_node"`
	// GroupSize is the fan-out width of broadcast operations. Defaults to
	// min(16, total actors).
	GroupSize int `json:"group_size"`
	// Workers is the closed-loop concurrency (ignored in open loop).
	// Defaults to 2×GOMAXPROCS.
	Workers int `json:"workers"`
	// RatePerSec switches to open-loop arrival at that rate: operations
	// are launched on schedule regardless of completions (the arrival
	// process of a public service), and latency includes any queueing the
	// system builds up. 0 keeps the closed loop.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Duration is the measured run length. Defaults to 2s.
	Duration time.Duration `json:"-"`
	// Mix weights the operation classes.
	Mix Mix `json:"mix"`
	// PayloadBytes sizes the opaque payload carried by calls and
	// broadcasts. Defaults to 64.
	PayloadBytes int `json:"payload_bytes"`
	// BatchWindow/BatchBytes configure the runtime's batching path
	// (Config.BatchWindow of the runtime; zero = batching off).
	BatchWindow time.Duration `json:"-"`
	// BatchBytes caps one batch frame's payload.
	BatchBytes int `json:"batch_bytes,omitempty"`
	// DisableDGC turns the collector off to isolate the messaging path.
	DisableDGC bool `json:"disable_dgc,omitempty"`
	// DropConnsEvery, when positive on the tcp backend, forcibly drops
	// every established connection at that period — the soak harness's
	// transient-failure chaos.
	DropConnsEvery time.Duration `json:"-"`
	// ChurnBurst is the number of activities one churn operation spawns
	// before calling one of them and releasing the lot. Defaults to 1;
	// the scale scenario raises it to reach its activity floor quickly.
	ChurnBurst int `json:"churn_burst,omitempty"`
	// MinActivities, when positive, keeps the closed loop running past
	// Duration until at least this many activities have been created
	// (base population + churn + migration + chaos lifecycles). The
	// 10^5-activity scale scenario is gated on this floor.
	MinActivities uint64 `json:"min_activities,omitempty"`
	// DisableTreeFanOut forces group broadcasts onto the flat
	// root-sends-all path (active.Config.DisableTreeFanOut): the control
	// arm of the tree-vs-flat comparison.
	DisableTreeFanOut bool `json:"disable_tree_fanout,omitempty"`
	// NetPerMessage models fixed per-message interface overhead on the
	// sim backend (simnet.Config.PerMessage): messages serialize at each
	// node's tx and rx interface, the packet-rate bottleneck a real
	// deployment has. Zero leaves interfaces infinitely fast. Ignored on
	// tcp, whose overhead is real.
	NetPerMessage time.Duration `json:"net_per_message,omitempty"`
	// NetPerByte models finite interface bandwidth on the sim backend
	// (simnet.Config.PerByte).
	NetPerByte time.Duration `json:"net_per_byte,omitempty"`
	// Cluster enables the elastic cluster runtime (membership, failure
	// detection) for the run. Implied by NodeKillEvery.
	Cluster bool `json:"cluster,omitempty"`
	// RestartEvery, when positive on the sim backend, runs crash-restart
	// chaos at that period: a dedicated durable node hosting registered,
	// checkpointed actors is hard-killed (network blackholed, runtime
	// reaped mid-traffic) and brought back through Env.Recover, after
	// which every registered identity must answer again — the
	// zero-lost-registered-identities invariant the churn-restart
	// scenario is gated on. Implies a checkpoint store for the run.
	RestartEvery time.Duration `json:"-"`
	// NodeKillEvery, when positive, runs node churn chaos at that period:
	// a fresh node joins the cluster, hosts an activity, serves one call,
	// and then dies — hard-killed at the network level on the sim backend
	// (exercising failure detection and ErrNodeDead cleanup), crashed on
	// tcp. The steady-state workload must ride through undisturbed.
	NodeKillEvery time.Duration `json:"-"`
	// SendWindow bounds the one-way send lane's outstanding window: each
	// worker fires SendWindow-1 fire-and-forget pings at its designated
	// actor and then makes one synchronous ping, which cannot complete
	// until the actor has served everything queued before it (FIFO per
	// sender). Defaults to 256.
	SendWindow int `json:"send_window,omitempty"`
	// Colocate anchors the send lane's stubs on the actor-owning nodes, so
	// one-way pings take the intra-node direct path instead of crossing
	// the transport: the scenario that measures the runtime's messaging
	// floor rather than the substrate's. Other lanes always cross the
	// transport.
	Colocate bool `json:"colocate,omitempty"`
	// OpTimeout bounds one operation's wait (a lost future update, e.g.
	// under connection chaos, then counts as an error instead of wedging a
	// worker). Defaults to 30s.
	OpTimeout time.Duration `json:"-"`
	// Seed makes operation interleaving reproducible.
	Seed int64 `json:"seed"`
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = "sim"
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.ActorsPerNode <= 0 {
		c.ActorsPerNode = 4
	}
	total := c.Nodes * c.ActorsPerNode
	if c.GroupSize <= 0 || c.GroupSize > total {
		c.GroupSize = total
		if c.GroupSize > 16 {
			c.GroupSize = 16
		}
	}
	if c.Workers <= 0 {
		c.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 64
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.ChurnBurst <= 0 {
		c.ChurnBurst = 1
	}
	if c.SendWindow <= 0 {
		c.SendWindow = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NodeKillEvery > 0 {
		c.Cluster = true
	}
	c.Mix = c.Mix.normalized()
	return c
}

// OpStats aggregates one operation class.
type OpStats struct {
	// Ops is the number of completed operations.
	Ops uint64 `json:"ops"`
	// Errors is the number of failed operations.
	Errors uint64 `json:"errors"`
	// Latency digests the class's latency histogram.
	Latency LatencySummary `json:"latency"`
}

// ClassTraffic is the accounted traffic of one transport class.
type ClassTraffic struct {
	// Bytes is the total accounted payload bytes.
	Bytes uint64 `json:"bytes"`
	// Messages is the number of accounted payloads.
	Messages uint64 `json:"messages"`
}

// Result is the machine-readable outcome of one run.
type Result struct {
	// Config echoes the effective configuration.
	Config Config `json:"config"`
	// OpenLoop records whether arrival was open-loop.
	OpenLoop bool `json:"open_loop"`
	// Batched records whether the batching path was enabled.
	Batched bool `json:"batched"`
	// BatchWindowMicros is the batching window in microseconds (0 = off).
	BatchWindowMicros int64 `json:"batch_window_us"`
	// DurationSeconds is the measured wall time.
	DurationSeconds float64 `json:"duration_s"`
	// TotalOps counts completed operations across classes.
	TotalOps uint64 `json:"total_ops"`
	// Throughput is completed operations per second.
	Throughput float64 `json:"throughput_ops_per_s"`
	// MessagesPerSec is accounted transport messages per second.
	MessagesPerSec float64 `json:"messages_per_s"`
	// Calls, Broadcasts, Churns, Pipelines, Migrates and Sends digest the
	// per-class measurements.
	Calls      OpStats `json:"calls"`
	Broadcasts OpStats `json:"broadcasts"`
	Churns     OpStats `json:"churns"`
	Pipelines  OpStats `json:"pipelines"`
	Migrates   OpStats `json:"migrates"`
	Sends      OpStats `json:"sends"`
	// LostReplies counts operations whose reply never arrived (the wait
	// hit OpTimeout): the zero-lost-replies invariant the scale scenario
	// is gated on. Fast failures (e.g. ErrNodeDead) are ordinary errors,
	// not lost replies.
	LostReplies uint64 `json:"lost_replies"`
	// ActivitiesCreated is the total number of activities this run
	// brought to life: base population, churn spawns, migration subjects
	// and chaos-lifecycle victims.
	ActivitiesCreated uint64 `json:"activities_created"`
	// Traffic maps transport class names to accounted totals.
	Traffic map[string]ClassTraffic `json:"traffic"`
	// LiveActivities is the live count at the end (churn backlog the DGC
	// still owes).
	LiveActivities int `json:"live_activities"`
	// NodeKills is how many chaos node lifecycles (join, serve, die) ran.
	NodeKills uint64 `json:"node_kills,omitempty"`
	// Restarts is how many crash-restart chaos cycles (kill the durable
	// node, recover it from its checkpoints) completed.
	Restarts uint64 `json:"restarts,omitempty"`
	// LostIdentities counts registered durable identities that failed to
	// answer after a crash-restart cycle — the churn-restart scenario is
	// gated on this staying zero.
	LostIdentities uint64 `json:"lost_identities,omitempty"`
	// CollectedActivities is how many the DGC reclaimed during the run.
	CollectedActivities int `json:"collected_activities"`
}

// echoReq/echoResp are the workload's wire shapes.
type echoReq struct {
	Seq     int64  `wire:"seq"`
	Payload []byte `wire:"payload"`
}

type echoResp struct {
	Seq  int64 `wire:"seq"`
	Echo int64 `wire:"echo"`
}

// opKind indexes the per-worker stats.
type opKind int

const (
	opCall opKind = iota
	opBroadcast
	opChurn
	opPipeline
	opMigrate
	opSend
	numOps
)

// workerStats is one worker's (or one open-loop shard's) private tally.
type workerStats struct {
	hist   [numOps]histogram
	ops    [numOps]uint64
	errors [numOps]uint64
	lost   [numOps]uint64
	// The send lane's per-worker state: the designated ping stub (each
	// worker hammers one actor so the windowed barrier truly bounds that
	// actor's backlog) and the one-way sends since the last barrier.
	sendStub *active.Stub[int64, int64]
	pending  int
}

// echoKind is the registered behavior kind behind the migrate workload:
// migration re-instantiates the behavior from the process-global registry
// at the destination, so the kind registers once per process.
const echoKind = "loadgen/echo"

var registerEchoKind = sync.OnceFunc(func() {
	active.RegisterBehavior(echoKind, func() active.Behavior {
		return echoService()
	})
})

// echoService is the workload behavior: the struct echo the call lanes
// round-trip, plus the scalar ping the one-way send lane fires.
func echoService() *active.Service {
	return active.NewService(
		active.Method("echo", func(_ *active.Context, req echoReq) (echoResp, error) {
			return echoResp{Seq: req.Seq, Echo: int64(len(req.Payload))}, nil
		}),
		active.Method("ping", func(_ *active.Context, v int64) (int64, error) {
			return v, nil
		}))
}

// Run executes one load-generation run and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	registerEchoKind()
	// The closed loop saturates every core, so liveness timing must not
	// sit at the runtime's low-latency defaults (TTB 30ms, TTA ~100ms,
	// death after ~165ms of silence): a driver goroutine starved for one
	// scheduling hiccup would stop heartbeating long enough for its
	// referenced actors to self-collect, or for the failure detector to
	// declare a live node dead and purge its reference edges. Pace the
	// beats and windows for a loaded deployment; explicit release-edge
	// removal (the churn reclamation path) is unaffected by TTA.
	envCfg := active.Config{
		TTB:               100 * time.Millisecond,
		TTA:               time.Second,
		DisableDGC:        cfg.DisableDGC,
		BatchWindow:       cfg.BatchWindow,
		BatchBytes:        cfg.BatchBytes,
		DisableTreeFanOut: cfg.DisableTreeFanOut,
		Cluster: active.ClusterConfig{
			Enabled:      cfg.Cluster,
			SuspectAfter: 500 * time.Millisecond,
			DeadAfter:    500 * time.Millisecond,
		},
	}
	if cfg.RestartEvery > 0 {
		if cfg.Backend != "sim" {
			return Result{}, fmt.Errorf("loadgen: restart chaos needs the sim backend (KillNode/ReviveNode hooks)")
		}
		// The restart arm needs somewhere durable to recover from; the
		// cadence keeps the actors freshly checkpointed between kills.
		envCfg.Store = store.NewMemStore()
		envCfg.CheckpointEvery = 25 * time.Millisecond
	}
	var dropper interface{ DropConnections() }
	switch cfg.Backend {
	case "sim":
		if cfg.NetPerMessage > 0 || cfg.NetPerByte > 0 {
			envCfg.Transport = simnet.New(simnet.Config{
				PerMessage: cfg.NetPerMessage,
				PerByte:    cfg.NetPerByte,
			})
		}
	case "tcp":
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			return Result{}, err
		}
		envCfg.Transport = tr
		dropper = tr
	default:
		return Result{}, fmt.Errorf("loadgen: unknown backend %q", cfg.Backend)
	}
	env := active.NewEnv(envCfg)
	defer env.Close()

	// Topology: one caller node plus worker nodes full of echo actors;
	// the caller re-anchors a handle per actor so every operation crosses
	// the transport.
	caller := env.NewNode()
	svc := echoService()
	workerNodes := make([]*active.Node, cfg.Nodes)
	for i := range workerNodes {
		workerNodes[i] = env.NewNode()
	}
	var stubs []active.Stub[echoReq, echoResp]
	var pingStubs []active.Stub[int64, int64]
	var handles []*active.Handle
	for ni, n := range workerNodes {
		for a := 0; a < cfg.ActorsPerNode; a++ {
			local := n.NewActive(fmt.Sprintf("echo-%d-%d", ni, a), svc)
			defer local.Release()
			remote, err := caller.HandleFor(local.Ref())
			if err != nil {
				return Result{}, err
			}
			defer remote.Release()
			handles = append(handles, remote)
			stubs = append(stubs, active.NewStub[echoReq, echoResp](remote, "echo"))
			// The send lane optionally stays on the owning node: colocated
			// pings take the intra-node direct path, measuring the
			// runtime's own messaging floor.
			pingHandle := remote
			if cfg.Colocate {
				pingHandle = local
			}
			pingStubs = append(pingStubs, active.NewStub[int64, int64](pingHandle, "ping"))
		}
	}
	group := active.NewGroup[echoReq, echoResp]("echo", handles[:cfg.GroupSize]...)

	// The forwarded-future pipeline: a 4-stage chain spread across the
	// worker nodes. Every non-final stage calls downstream and returns
	// the unresolved future; the caller's single wait resolves through
	// the flattened chain.
	const pipeStages = 4
	stageSvc := active.NewService(
		active.Method("wire", func(ctx *active.Context, next wire.Value) (struct{}, error) {
			ctx.Store("next", next)
			return struct{}{}, nil
		}),
		active.Method("pipe", func(ctx *active.Context, req echoReq) (wire.Value, error) {
			next := ctx.Load("next")
			if next.IsNull() {
				resp, err := wire.Marshal(echoResp{Seq: req.Seq, Echo: int64(len(req.Payload))})
				return resp, err
			}
			fut, err := active.CallTyped[echoResp](ctx, next, "pipe", req)
			if err != nil {
				return wire.Null(), err
			}
			return wire.Marshal(fut)
		}))
	stageHandles := make([]*active.Handle, pipeStages)
	for i := range stageHandles {
		stageHandles[i] = workerNodes[i%len(workerNodes)].NewActive(
			fmt.Sprintf("pipe-stage-%d", i), stageSvc)
		defer stageHandles[i].Release()
	}
	for i, h := range stageHandles {
		next := wire.Null()
		if i < pipeStages-1 {
			next = stageHandles[i+1].Ref()
		}
		if _, err := h.CallSync("wire", next, 10*time.Second); err != nil {
			return Result{}, err
		}
	}
	pipeHead, err := caller.HandleFor(stageHandles[0].Ref())
	if err != nil {
		return Result{}, err
	}
	defer pipeHead.Release()
	pipeStub := active.NewStub[echoReq, echoResp](pipeHead, "pipe")

	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	mix := cfg.Mix
	weightTotal := mix.Call + mix.Broadcast + mix.Churn + mix.Pipeline + mix.Migrate + mix.Send

	// created counts every activity this run brings to life; the scale
	// scenario's closed loop keeps running until it crosses
	// cfg.MinActivities.
	var created atomic.Uint64
	created.Add(uint64(len(handles) + pipeStages))

	var seq atomic.Int64
	churnNode := func(rng *rand.Rand) *active.Node {
		return workerNodes[rng.Intn(len(workerNodes))]
	}
	runOp := func(rng *rand.Rand, st *workerStats) {
		k := opCall
		switch w := rng.Intn(weightTotal); {
		case w < mix.Call:
			k = opCall
		case w < mix.Call+mix.Broadcast:
			k = opBroadcast
		case w < mix.Call+mix.Broadcast+mix.Churn:
			k = opChurn
		case w < mix.Call+mix.Broadcast+mix.Churn+mix.Pipeline:
			k = opPipeline
		case w < mix.Call+mix.Broadcast+mix.Churn+mix.Pipeline+mix.Migrate:
			k = opMigrate
		default:
			k = opSend
		}
		if k == opSend {
			// The asynchronous-messaging lane: SendWindow-1 fire-and-forget
			// pings at this worker's designated actor, then one synchronous
			// ping. FIFO per sender means the barrier's reply proves every
			// one-way before it was served, so a throughput figure from this
			// lane counts messages the serve side actually kept up with —
			// while bounding the actor's queue to one window.
			if st.sendStub == nil {
				s := pingStubs[rng.Intn(len(pingStubs))]
				st.sendStub = &s
			}
			start := time.Now()
			var err error
			if st.pending+1 >= cfg.SendWindow {
				_, err = st.sendStub.CallSync(int64(st.pending), cfg.OpTimeout)
				st.pending = 0
			} else {
				err = st.sendStub.Send(int64(st.pending))
				st.pending++
			}
			if err != nil {
				st.errors[opSend]++
				if errors.Is(err, active.ErrFutureTimeout) {
					st.lost[opSend]++
				}
				return
			}
			st.hist[opSend].record(time.Since(start))
			st.ops[opSend]++
			return
		}
		req := echoReq{Seq: seq.Add(1), Payload: payload}
		start := time.Now()
		var err error
		switch k {
		case opCall:
			_, err = stubs[rng.Intn(len(stubs))].CallSync(req, cfg.OpTimeout)
		case opBroadcast:
			var fg *active.FutureGroup[echoResp]
			if fg, err = group.Broadcast(req); err == nil {
				_, err = fg.WaitAll(cfg.OpTimeout)
			}
		case opChurn:
			// Spawn a burst, reference one, call it, release the lot: the
			// lifecycle that feeds the DGC a steady diet of fresh edges
			// and fresh garbage.
			hs := make([]*active.Handle, cfg.ChurnBurst)
			for i := range hs {
				hs[i] = churnNode(rng).NewActive("churn", svc)
			}
			created.Add(uint64(len(hs)))
			var hc *active.Handle
			if hc, err = caller.HandleFor(hs[rng.Intn(len(hs))].Ref()); err == nil {
				_, err = active.NewStub[echoReq, echoResp](hc, "echo").CallSync(req, cfg.OpTimeout)
				hc.Release()
			}
			for _, h := range hs {
				h.Release()
			}
		case opPipeline:
			// One item through the 4-stage forwarded-future chain: the
			// caller's single wait resolves through the flattening
			// machinery and every hop's future-update propagation.
			var resp echoResp
			if resp, err = pipeStub.CallSync(req, cfg.OpTimeout); err == nil && resp.Seq != req.Seq {
				err = fmt.Errorf("loadgen: pipeline echoed seq %d, want %d", resp.Seq, req.Seq)
			}
		case opMigrate:
			// One live-migration lifecycle: spawn a migratable activity,
			// call it, move it to another node, then call it again through
			// the stale handle — the forwarder, redirect and
			// sharded-directory machinery under load.
			src := workerNodes[rng.Intn(len(workerNodes))]
			dst := workerNodes[rng.Intn(len(workerNodes))]
			var h *active.Handle
			if h, err = src.SpawnKind("mig", echoKind); err == nil {
				created.Add(1)
				var hc *active.Handle
				if hc, err = caller.HandleFor(h.Ref()); err == nil {
					stub := active.NewStub[echoReq, echoResp](hc, "echo")
					if _, err = stub.CallSync(req, cfg.OpTimeout); err != nil {
						err = fmt.Errorf("pre-call: %w", err)
					} else {
						var mfut *active.Future
						if mfut, err = h.Migrate(dst.ID()); err != nil {
							err = fmt.Errorf("migrate: %w", err)
						} else if _, err = mfut.Wait(cfg.OpTimeout); err != nil {
							err = fmt.Errorf("mfut: %w", err)
						} else if _, err = stub.CallSync(req, cfg.OpTimeout); err != nil {
							err = fmt.Errorf("post-call: %w", err)
						}
					}
					hc.Release()
				}
				h.Release()
			}
		}
		if err != nil {
			// Failed operations count separately and stay out of the
			// latency digest: a timed-out call would otherwise both
			// inflate throughput and poison the tail percentiles. A
			// timeout specifically is a *lost reply* — the invariant the
			// scale scenario is gated on.
			st.errors[k]++
			if errors.Is(err, active.ErrFutureTimeout) {
				st.lost[k]++
			}
			return
		}
		st.hist[k].record(time.Since(start))
		st.ops[k]++
	}

	env.Network().ResetCounters()
	collectedBefore := env.Stats().Collected
	var collectedBeforeTotal int
	for _, c := range collectedBefore {
		collectedBeforeTotal += c
	}

	// The crash-restart arm's population: a dedicated node of registered,
	// checkpointed actors, each pinned by a caller-side stub that must
	// keep answering across every kill-and-recover cycle. The node is
	// dedicated so the steady-state lanes above never route through the
	// blackhole window.
	var durableNode *active.Node
	var durablePings []active.Stub[int64, int64]
	if cfg.RestartEvery > 0 {
		const durableActors = 8
		durableNode = env.NewNode()
		for i := 0; i < durableActors; i++ {
			h, err := durableNode.SpawnKind(fmt.Sprintf("durable-%d", i), echoKind)
			if err != nil {
				return Result{}, err
			}
			if err := env.RegisterName(fmt.Sprintf("durable-%d", i), h.Ref()); err != nil {
				return Result{}, err
			}
			// One acknowledged checkpoint up front: the first kill may land
			// before the cadence's first beat.
			fut, err := h.Checkpoint()
			if err != nil {
				return Result{}, err
			}
			if _, err := fut.Wait(cfg.OpTimeout); err != nil {
				return Result{}, err
			}
			hc, err := caller.HandleFor(h.Ref())
			if err != nil {
				return Result{}, err
			}
			defer hc.Release()
			durablePings = append(durablePings, active.NewStub[int64, int64](hc, "ping"))
			h.Release()
		}
		created.Add(durableActors)
	}

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	var nodeKills atomic.Uint64
	var restarts, lostIdentities atomic.Uint64
	if cfg.RestartEvery > 0 {
		killer, ok := env.Network().(*simnet.Network)
		if !ok {
			return Result{}, fmt.Errorf("loadgen: restart chaos needs the simnet transport")
		}
		durID := durableNode.ID()
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			t := time.NewTicker(cfg.RestartEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// Machine failure: blackhole the node, reap its runtime,
					// then restart and recover from the checkpoint store.
					killer.KillNode(durID)
					durableNode.Crash()
					killer.ReviveNode(durID)
					// A partial recovery (decode error on one entry) still
					// restores the rest; the per-identity verification below
					// is the gate either way.
					_, _ = env.Recover()
					if n := env.Node(durID); n != nil {
						durableNode = n
					}
					// Every registered identity must answer again through the
					// stubs that predate the crash.
					deadline := time.Now().Add(10 * time.Second)
					for _, stub := range durablePings {
						ok := false
						for time.Now().Before(deadline) {
							if _, err := stub.CallSync(1, 250*time.Millisecond); err == nil {
								ok = true
								break
							}
						}
						if !ok {
							lostIdentities.Add(1)
						}
					}
					restarts.Add(1)
				}
			}
		}()
	}
	if cfg.NodeKillEvery > 0 {
		nodeKiller, _ := env.Network().(*simnet.Network)
		killCycle := func() {
			// One full elastic lifecycle: join a node, host an
			// activity, serve one call across the transport, die.
			victim := env.NewNode()
			h := victim.NewActive("chaos-victim", svc)
			created.Add(1)
			if hc, err := caller.HandleFor(h.Ref()); err == nil {
				req := echoReq{Seq: seq.Add(1), Payload: payload}
				_, _ = active.NewStub[echoReq, echoResp](hc, "echo").CallSync(req, cfg.OpTimeout)
				hc.Release()
			}
			h.Release()
			if nodeKiller != nil {
				// Hard kill first: the survivors' heartbeats toward
				// the victim now fail, driving the suspect→dead path
				// and the ErrNodeDead cleanup fan-out.
				nodeKiller.KillNode(victim.ID())
			}
			victim.Crash()
			nodeKills.Add(1)
		}
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			// One cycle up front: a short run on a starved single-CPU
			// scheduler may never see the first tick, and a chaos arm
			// that did nothing reads as a pass.
			killCycle()
			t := time.NewTicker(cfg.NodeKillEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					killCycle()
				}
			}
		}()
	}
	if dropper != nil && cfg.DropConnsEvery > 0 {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			t := time.NewTicker(cfg.DropConnsEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					dropper.DropConnections()
				}
			}
		}()
	}

	// The scale scenario's activity floor: the closed loop keeps issuing
	// operations past the duration until enough activities existed.
	more := func() bool {
		return cfg.MinActivities > 0 && created.Load() < cfg.MinActivities
	}

	start := time.Now()
	var statsList []*workerStats
	if cfg.RatePerSec > 0 {
		statsList = runOpenLoop(cfg, stop, runOp)
	} else {
		statsList = runClosedLoop(cfg, stop, more, runOp)
	}
	elapsed := time.Since(start)
	close(stop)
	chaosWG.Wait()

	// Merge the per-worker tallies.
	var merged workerStats
	var lostTotal uint64
	for _, st := range statsList {
		for k := opKind(0); k < numOps; k++ {
			merged.hist[k].merge(&st.hist[k])
			merged.ops[k] += st.ops[k]
			merged.errors[k] += st.errors[k]
			lostTotal += st.lost[k]
		}
	}
	snap := env.Network().Snapshot()

	res := Result{
		Config:            cfg,
		OpenLoop:          cfg.RatePerSec > 0,
		Batched:           cfg.BatchWindow > 0,
		BatchWindowMicros: int64(cfg.BatchWindow / time.Microsecond),
		DurationSeconds:   elapsed.Seconds(),
		Traffic:           make(map[string]ClassTraffic),
		LiveActivities:    env.LiveActivities(),
		NodeKills:         nodeKills.Load(),
		Restarts:          restarts.Load(),
		LostIdentities:    lostIdentities.Load(),
	}
	opStats := func(k opKind) OpStats {
		return OpStats{Ops: merged.ops[k], Errors: merged.errors[k], Latency: merged.hist[k].summary()}
	}
	res.Calls = opStats(opCall)
	res.Broadcasts = opStats(opBroadcast)
	res.Churns = opStats(opChurn)
	res.Pipelines = opStats(opPipeline)
	res.Migrates = opStats(opMigrate)
	res.Sends = opStats(opSend)
	res.LostReplies = lostTotal
	res.ActivitiesCreated = created.Load()
	res.TotalOps = merged.ops[opCall] + merged.ops[opBroadcast] + merged.ops[opChurn] +
		merged.ops[opPipeline] + merged.ops[opMigrate] + merged.ops[opSend]
	if elapsed > 0 {
		res.Throughput = float64(res.TotalOps) / elapsed.Seconds()
	}
	var msgs uint64
	for class, b := range snap.Bytes {
		msgs += snap.Messages[class]
		res.Traffic[class.String()] = ClassTraffic{Bytes: b, Messages: snap.Messages[class]}
	}
	if elapsed > 0 {
		res.MessagesPerSec = float64(msgs) / elapsed.Seconds()
	}
	var collectedTotal int
	for _, c := range env.Stats().Collected {
		collectedTotal += c
	}
	res.CollectedActivities = collectedTotal - collectedBeforeTotal
	return res, nil
}

// runClosedLoop drives Workers goroutines that each issue operations
// back-to-back until the duration elapses: the throughput-probe shape.
// When more reports outstanding work (the scale scenario's activity
// floor), workers keep going past the deadline — bounded by a hard stop
// so a wedged run fails the gate instead of hanging CI.
func runClosedLoop(cfg Config, stop <-chan struct{}, more func() bool, runOp func(*rand.Rand, *workerStats)) []*workerStats {
	deadline := time.Now().Add(cfg.Duration)
	hardStop := deadline.Add(2 * time.Minute)
	stats := make([]*workerStats, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		st := &workerStats{}
		stats[w] = st
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for now := time.Now(); now.Before(deadline) || (more() && now.Before(hardStop)); now = time.Now() {
				runOp(rng, st)
			}
		}()
	}
	wg.Wait()
	return stats
}

// runOpenLoop launches operations on an arrival schedule regardless of
// completions (bounded by a generous in-flight cap so a stalled system
// sheds load instead of leaking goroutines): the latency-under-rate
// shape. Shed arrivals are counted as errors of the call class.
func runOpenLoop(cfg Config, stop <-chan struct{}, runOp func(*rand.Rand, *workerStats)) []*workerStats {
	interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	const maxInFlight = 4096
	sem := make(chan struct{}, maxInFlight)
	deadline := time.Now().Add(cfg.Duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var mu sync.Mutex
	var stats []*workerStats
	var wg sync.WaitGroup
	var arrival atomic.Int64
	var shed uint64
	for time.Now().Before(deadline) {
		<-ticker.C
		select {
		case sem <- struct{}{}:
		default:
			shed++
			continue
		}
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			defer func() { <-sem }()
			st := &workerStats{}
			rng := rand.New(rand.NewSource(cfg.Seed + n))
			runOp(rng, st)
			mu.Lock()
			stats = append(stats, st)
			mu.Unlock()
		}(arrival.Add(1))
	}
	wg.Wait()
	if shed > 0 {
		st := &workerStats{}
		st.errors[opCall] += shed
		stats = append(stats, st)
	}
	return stats
}
