// Package loadgen is the load-generation and soak subsystem: it drives
// the active-object runtime with configurable workload mixes (typed
// calls, group broadcasts, DGC churn) under open- or closed-loop arrival,
// measures per-operation latency histograms and per-class traffic, and
// emits the machine-readable records (BENCH_messaging.json) that give
// every PR a before/after messaging trajectory.
//
// The paper's evaluation measures the DGC against fixed workloads (§5);
// this package is the reproduction's standing equivalent for the
// messaging substrate itself: the same workload runs over simnet or
// tcpnet, batched or unbatched, and the JSON diff is the regression
// signal.
package loadgen

import (
	"math/bits"
	"time"
)

// histogram is a log-linear latency histogram: 16 sub-buckets per power
// of two of microseconds, covering 1µs .. ~1.2h with ≤ 6.25% relative
// error. The zero value is ready to use; not safe for concurrent use
// (each worker records into its own and they are merged afterwards).
type histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave
	histOctaves = 32
	histBuckets = histOctaves * histSub
)

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us < histSub {
		return int(us)
	}
	octave := bits.Len64(us) - histSubBits - 1
	idx := octave*histSub + int(us>>uint(octave)) // top histSubBits+1 bits
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the lower bound of bucket idx.
func bucketLow(idx int) time.Duration {
	if idx < histSub {
		return time.Duration(idx) * time.Microsecond
	}
	octave := idx / histSub
	sub := idx % histSub
	us := (uint64(histSub) + uint64(sub)) << uint(octave-1)
	return time.Duration(us) * time.Microsecond
}

func (h *histogram) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// merge folds o into h.
func (h *histogram) merge(o *histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency at quantile q (0 < q ≤ 1) as the lower
// bound of the bucket holding the q-th observation.
func (h *histogram) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	// Nearest-rank on the 0-based observation index.
	want := uint64(q * float64(h.total-1))
	if want >= h.total {
		want = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > want {
			return bucketLow(i)
		}
	}
	return h.max
}

// LatencySummary is the JSON-friendly digest of one histogram.
type LatencySummary struct {
	// Count is the number of recorded operations.
	Count uint64 `json:"count"`
	// MeanMicros is the arithmetic mean in microseconds.
	MeanMicros float64 `json:"mean_us"`
	// P50Micros..P99Micros are latency quantiles in microseconds.
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
	// MaxMicros is the worst observed latency in microseconds.
	MaxMicros float64 `json:"max_us"`
}

func (h *histogram) summary() LatencySummary {
	s := LatencySummary{Count: h.total}
	if h.total == 0 {
		return s
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	s.MeanMicros = us(h.sum) / float64(h.total)
	s.P50Micros = us(h.quantile(0.50))
	s.P90Micros = us(h.quantile(0.90))
	s.P99Micros = us(h.quantile(0.99))
	s.MaxMicros = us(h.max)
	return s
}
