// Package des is a deterministic discrete-event simulation engine. The
// paper-scale experiments (6 401 activities, tens of thousands of simulated
// seconds, Fig. 10) run on it: virtual time makes them exact and fast, and
// seeded randomness makes them reproducible run-to-run.
package des

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a single-threaded event loop over virtual time. It is NOT safe
// for concurrent use: all scheduled functions run on the caller's
// goroutine inside Step/Run*.
type Engine struct {
	now    time.Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
}

// New creates an engine positioned at start, with seeded randomness.
func New(start time.Time, seed int64) *Engine {
	return &Engine{now: start, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at time t. Scheduling in the past runs at the current
// time (never rewinds the clock). Events with equal times run in
// scheduling order.
func (e *Engine) At(t time.Time, fn func()) {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn after delay d.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the next event; it reports false when no event is pending.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes events up to and including time t, then sets the clock
// to t.
func (e *Engine) RunUntil(t time.Time) {
	for len(e.events) > 0 && !e.events[0].at.After(t) {
		e.Step()
	}
	if e.now.Before(t) {
		e.now = t
	}
}

// RunFor executes events for a span of virtual time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// Run executes events until none remain (use with care: periodic
// reschedulers never drain).
func (e *Engine) Run() {
	for e.Step() {
	}
}

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
