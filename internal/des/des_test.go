package des

import (
	"testing"
	"time"
)

func start() time.Time { return time.Unix(0, 0) }

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(start(), 1)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if got := e.Now(); !got.Equal(start().Add(3 * time.Second)) {
		t.Fatalf("Now = %v", got)
	}
}

func TestEqualTimesRunInScheduleOrder(t *testing.T) {
	e := New(start(), 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(start(), 1)
	var fired []time.Time
	e.After(time.Second, func() {
		fired = append(fired, e.Now())
		e.After(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired %d times", len(fired))
	}
	if got := fired[1].Sub(fired[0]); got != time.Second {
		t.Fatalf("nested delay = %v", got)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New(start(), 1)
	e.RunUntil(start().Add(time.Minute))
	var at time.Time
	e.At(start(), func() { at = e.Now() }) // in the past
	e.Run()
	if !at.Equal(start().Add(time.Minute)) {
		t.Fatalf("past event ran at %v", at)
	}
	e.After(-time.Second, func() {}) // negative delay: clamped, must not panic
	e.Run()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New(start(), 1)
	var fired []int
	e.After(1*time.Second, func() { fired = append(fired, 1) })
	e.After(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(start().Add(3 * time.Second))
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want only the 1s event", fired)
	}
	if !e.Now().Equal(start().Add(3 * time.Second)) {
		t.Fatalf("Now = %v, want clamped to boundary", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.RunFor(10 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v after RunFor", fired)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New(start(), 1)
	if e.Step() {
		t.Fatal("Step on empty engine = true")
	}
}

func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []int {
		e := New(start(), seed)
		var out []int
		// A self-rescheduling process with random delays.
		var tick func()
		count := 0
		tick = func() {
			count++
			out = append(out, int(e.Now().Unix()))
			if count < 50 {
				e.After(time.Duration(1+e.Rand().Intn(10))*time.Second, tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return out
	}
	a := trace(42)
	b := trace(42)
	c := trace(43)
	if len(a) != len(b) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}
