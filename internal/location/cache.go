package location

import (
	"container/list"
	"sync"

	"repro/internal/ids"
)

// DefaultCacheSize bounds the per-node learned-location cache. Each
// entry is two activity IDs plus list overhead (~64 bytes), so the
// default costs a node well under a megabyte.
const DefaultCacheSize = 4096

type centry struct {
	key, val ids.ActivityID
}

// Cache is a bounded LRU map from stale activity identities to their
// freshest known identity. It carries the rebind-chain path
// compression that used to live in the node's unbounded rebind table:
// adding old→new first resolves new through existing entries and then
// re-points entries that named old, so lookups stay O(1) amortized and
// chains collapse as they are learned.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[ids.ActivityID]*list.Element
	ll  *list.List // front = most recently used
}

// NewCache returns a cache bounded to capacity entries (DefaultCacheSize
// when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap: capacity,
		m:   make(map[ids.ActivityID]*list.Element),
		ll:  list.New(),
	}
}

// Add records old→new, compressing through any chain already cached.
// A mapping that collapses to identity erases the entry instead.
func (c *Cache) Add(old, new ids.ActivityID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	new = c.chase(new)
	if e, ok := c.m[old]; ok && old == new {
		c.ll.Remove(e)
		delete(c.m, old)
		return
	}
	if old == new {
		return
	}
	if e, ok := c.m[old]; ok {
		e.Value.(*centry).val = new
		c.ll.MoveToFront(e)
	} else {
		c.m[old] = c.ll.PushFront(&centry{key: old, val: new})
	}
	// Re-point entries that resolved to old, so every cached chain
	// stays one hop long.
	for _, e := range c.m {
		ce := e.Value.(*centry)
		if ce.val == old {
			ce.val = new
		}
	}
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*centry).key)
	}
}

// Resolve follows id through the cache, returning id itself when
// nothing fresher is known. A hit refreshes the entry's LRU position.
func (c *Cache) Resolve(id ids.ActivityID) ids.ActivityID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) == 0 {
		return id
	}
	e, ok := c.m[id]
	if !ok {
		return id
	}
	c.ll.MoveToFront(e)
	return c.chase(e.Value.(*centry).val)
}

// chase follows a chain without touching LRU order. Entries are kept
// one hop long by Add, but eviction between Add calls can briefly
// expose multi-hop chains; the step bound keeps malformed cycles from
// spinning.
func (c *Cache) chase(id ids.ActivityID) ids.ActivityID {
	for i := 0; i < len(c.m); i++ {
		e, ok := c.m[id]
		if !ok {
			return id
		}
		id = e.Value.(*centry).val
	}
	return id
}

// PurgeTargets drops every entry whose resolved value lives on node p
// (used when p is declared dead: those locations are now lies). Keys
// that merely pass *through* p stay: the key names an identity, not a
// host.
func (c *Cache) PurgeTargets(p ids.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.m {
		if e.Value.(*centry).val.Node == p {
			c.ll.Remove(e)
			delete(c.m, k)
		}
	}
}

// Len returns the number of cached mappings.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Snapshot returns all mappings, for tests and shard handoff.
func (c *Cache) Snapshot() []Rebind {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Rebind, 0, len(c.m))
	for _, e := range c.m {
		ce := e.Value.(*centry)
		out = append(out, Rebind{Old: ce.key, New: ce.val})
	}
	return out
}
