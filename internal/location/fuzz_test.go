package location

import (
	"bytes"
	"testing"

	"repro/internal/ids"
)

// FuzzLocationEnvelope throws arbitrary bytes at all three directory
// decoders: none may panic, and anything a decoder accepts must
// re-encode to the identical bytes (the codec is canonical).
func FuzzLocationEnvelope(f *testing.F) {
	f.Add(AppendAnnounce(nil, nil))
	f.Add(AppendAnnounce(nil, []Rebind{
		{Old: ids.ActivityID{Node: 1, Seq: 2}, New: ids.ActivityID{Node: 3, Seq: 4}},
	}))
	f.Add(AppendAnnounce(nil, []Rebind{
		{Old: ids.ActivityID{Node: 0xffffffff, Seq: 0xffffffff}, New: ids.ActivityID{}},
		{Old: ids.ActivityID{Node: 5, Seq: 6}, New: ids.ActivityID{Node: 7, Seq: 8}},
	}))
	f.Add(AppendQuery(nil, ids.ActivityID{Node: 9, Seq: 10}))
	f.Add(AppendReply(nil, ids.ActivityID{Node: 11, Seq: 12}, true))
	f.Add(AppendReply(nil, ids.Nil, false))
	f.Add([]byte{TagAnnounce, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if rebinds, err := DecodeAnnounce(data); err == nil {
			if !bytes.Equal(AppendAnnounce(nil, rebinds), data) {
				t.Fatalf("announce not canonical: %x", data)
			}
		}
		if id, err := DecodeQuery(data); err == nil {
			if !bytes.Equal(AppendQuery(nil, id), data) {
				t.Fatalf("query not canonical: %x", data)
			}
		}
		if id, known, err := DecodeReply(data); err == nil {
			if !bytes.Equal(AppendReply(nil, id, known), data) {
				t.Fatalf("reply not canonical: %x", data)
			}
		}
	})
}
