package location

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
)

func aid(node, seq uint32) ids.ActivityID {
	return ids.ActivityID{Node: ids.NodeID(node), Seq: seq}
}

func members(n int) []ids.NodeID {
	out := make([]ids.NodeID, n)
	for i := range out {
		out[i] = ids.NodeID(i + 1)
	}
	return out
}

func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(nil, 0).Owner(aid(1, 1)); ok {
		t.Fatal("empty ring reported an owner")
	}
	r := NewRing([]ids.NodeID{7}, 0)
	for seq := uint32(0); seq < 100; seq++ {
		if o, ok := r.Owner(aid(3, seq)); !ok || o != 7 {
			t.Fatalf("single-member ring: owner = %v, %v", o, ok)
		}
	}
	if !r.Has(7) || r.Has(8) {
		t.Fatal("Has misreported membership")
	}
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(members(8), 0)
	b := NewRing([]ids.NodeID{8, 7, 6, 5, 4, 3, 2, 1}, 0) // order must not matter
	for i := 0; i < 1000; i++ {
		id := aid(uint32(i%16), uint32(i))
		oa, _ := a.Owner(id)
		ob, _ := b.Owner(id)
		if oa != ob {
			t.Fatalf("owner of %v differs by construction order: %v vs %v", id, oa, ob)
		}
	}
}

// TestRingBalance is the balance property from the issue: shard
// assignment over a realistic member count keeps max/min ≤ 2×.
func TestRingBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 8, 16, 32} {
		r := NewRing(members(n), 0)
		counts := make(map[ids.NodeID]int, n)
		const keys = 100_000
		for i := 0; i < keys; i++ {
			id := aid(rng.Uint32()%64, rng.Uint32())
			o, ok := r.Owner(id)
			if !ok {
				t.Fatal("no owner")
			}
			counts[o]++
		}
		min, max := keys, 0
		for _, m := range r.Members() {
			c := counts[m]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 || float64(max)/float64(min) > 2.0 {
			t.Fatalf("%d members: shard load max/min = %d/%d exceeds 2x", n, max, min)
		}
	}
}

// TestRingMinimalDisturbance: a single join only pulls keys to the new
// member; a single leave only moves the dead member's keys.
func TestRingMinimalDisturbance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 12
	base := NewRing(members(n), 0)
	keys := make([]ids.ActivityID, 20_000)
	for i := range keys {
		keys[i] = aid(rng.Uint32()%64, rng.Uint32())
	}

	joined := NewRing(append(members(n), ids.NodeID(99)), 0)
	moved := 0
	for _, k := range keys {
		ob, _ := base.Owner(k)
		oj, _ := joined.Owner(k)
		if ob != oj {
			if oj != 99 {
				t.Fatalf("join moved %v from %v to %v (not the new member)", k, ob, oj)
			}
			moved++
		}
	}
	// The new member should take roughly 1/(n+1) of the keyspace;
	// allow generous slack but catch wholesale reshuffles.
	if frac := float64(moved) / float64(len(keys)); frac > 2.0/float64(n+1) {
		t.Fatalf("join disturbed %.1f%% of keys, want ≲ %.1f%%", frac*100, 100*2.0/float64(n+1))
	}

	left := NewRing(members(n-1), 0) // member n leaves
	for _, k := range keys {
		ob, _ := base.Owner(k)
		ol, _ := left.Owner(k)
		if ob != ol && ob != ids.NodeID(n) {
			t.Fatalf("leave of member %d moved %v owned by %v to %v", n, k, ob, ol)
		}
	}
}

func TestCacheAddResolveCompress(t *testing.T) {
	c := NewCache(16)
	a, b, d := aid(1, 1), aid(2, 1), aid(3, 1)
	c.Add(a, b)
	if got := c.Resolve(a); got != b {
		t.Fatalf("Resolve(a) = %v, want %v", got, b)
	}
	// Learning b→d must compress the existing a→b entry to a→d.
	c.Add(b, d)
	if got := c.Resolve(a); got != d {
		t.Fatalf("after chain add, Resolve(a) = %v, want %v", got, d)
	}
	// Adding d→a would complete a cycle a→d→a; Add resolves through
	// the chain, sees identity, and must not loop or store it.
	c.Add(d, a)
	if got := c.Resolve(a); got != d && got != a {
		t.Fatalf("cycle add produced %v", got)
	}
	if got := c.Resolve(aid(9, 9)); got != aid(9, 9) {
		t.Fatal("miss must return the id unchanged")
	}
}

func TestCacheBoundedLRU(t *testing.T) {
	c := NewCache(8)
	for i := uint32(0); i < 64; i++ {
		c.Add(aid(10, i), aid(11, i))
	}
	if c.Len() != 8 {
		t.Fatalf("cache size %d, want 8", c.Len())
	}
	// The most recently added entries survive.
	if got := c.Resolve(aid(10, 63)); got != aid(11, 63) {
		t.Fatalf("newest entry evicted: %v", got)
	}
	if got := c.Resolve(aid(10, 0)); got != aid(10, 0) {
		t.Fatal("oldest entry should have been evicted")
	}
	// Touching an entry protects it from eviction.
	c.Resolve(aid(10, 56))
	for i := uint32(100); i < 107; i++ {
		c.Add(aid(10, i), aid(11, i))
	}
	if got := c.Resolve(aid(10, 56)); got != aid(11, 56) {
		t.Fatal("recently touched entry was evicted before older ones")
	}
}

func TestCachePurgeTargets(t *testing.T) {
	c := NewCache(16)
	c.Add(aid(1, 1), aid(5, 1))
	c.Add(aid(2, 1), aid(6, 1))
	c.Add(aid(3, 1), aid(5, 2))
	c.PurgeTargets(5)
	if got := c.Resolve(aid(1, 1)); got != aid(1, 1) {
		t.Fatalf("entry targeting dead node survived: %v", got)
	}
	if got := c.Resolve(aid(3, 1)); got != aid(3, 1) {
		t.Fatalf("entry targeting dead node survived: %v", got)
	}
	if got := c.Resolve(aid(2, 1)); got != aid(6, 1) {
		t.Fatalf("unrelated entry purged: %v", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	rebinds := []Rebind{
		{Old: aid(1, 2), New: aid(3, 4)},
		{Old: aid(0xffffffff, 0), New: aid(0, 0xffffffff)},
	}
	got, err := DecodeAnnounce(AppendAnnounce(nil, rebinds))
	if err != nil || len(got) != 2 || got[0] != rebinds[0] || got[1] != rebinds[1] {
		t.Fatalf("announce round-trip: %v, %v", got, err)
	}
	if got, err := DecodeAnnounce(AppendAnnounce(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty announce round-trip: %v, %v", got, err)
	}

	id, err := DecodeQuery(AppendQuery(nil, aid(7, 9)))
	if err != nil || id != aid(7, 9) {
		t.Fatalf("query round-trip: %v, %v", id, err)
	}

	nw, known, err := DecodeReply(AppendReply(nil, aid(8, 8), true))
	if err != nil || !known || nw != aid(8, 8) {
		t.Fatalf("reply round-trip: %v %v %v", nw, known, err)
	}
	nw, known, err = DecodeReply(AppendReply(nil, aid(8, 8), false))
	if err != nil || known || nw != ids.Nil {
		t.Fatalf("unknown reply round-trip: %v %v %v", nw, known, err)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{TagAnnounce},
		{TagAnnounce, 2, 0, 0}, // count says 2, body truncated
		{TagQuery},
		{TagQuery, 1, 2, 3},
		{TagReply, 2, 0, 0, 0, 0, 0, 0, 0, 0}, // known flag out of range
		{0x00, 1, 2},
	}
	for _, p := range bad {
		if _, err := DecodeAnnounce(p); err == nil && (len(p) == 0 || p[0] == TagAnnounce) {
			t.Fatalf("DecodeAnnounce accepted %x", p)
		}
		if _, err := DecodeQuery(p); err == nil && (len(p) == 0 || p[0] == TagQuery) {
			t.Fatalf("DecodeQuery accepted %x", p)
		}
		if _, _, err := DecodeReply(p); err == nil && (len(p) == 0 || p[0] == TagReply) {
			t.Fatalf("DecodeReply accepted %x", p)
		}
	}
}
