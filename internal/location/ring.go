// Package location implements the sharded location directory: a
// consistent-hash ring mapping activity IDs to their home shard (the
// cluster member that records the activity's freshest identity), a
// bounded LRU cache of learned locations with rebind-chain path
// compression, and the wire codec for directory envelopes.
//
// The directory is soft state. Every mapping it holds can be
// reconstructed from the forwarders the migration protocol already
// leaves behind; the directory only shortcuts the forwarding chain and
// survives the chain's links dying. Shards therefore need no
// replication protocol: when a shard owner dies the ring reassigns its
// range and the nodes that originated each mapping re-announce it to
// the new owner on their next beat.
package location

import (
	"sort"

	"repro/internal/ids"
)

// DefaultVnodes is the virtual-node count per member used when callers
// pass vnodes <= 0. High enough that an 8..64-member ring keeps the
// max/min shard-load ratio comfortably under 2.
const DefaultVnodes = 128

type point struct {
	hash  uint64
	owner ids.NodeID
}

// Ring is an immutable consistent-hash ring over a member set. Build a
// new Ring on every membership change; lookups are lock-free.
type Ring struct {
	points  []point
	members []ids.NodeID
}

// NewRing builds a ring over members (duplicates ignored) with the
// given virtual-node count per member. A nil/empty member set yields a
// ring whose Owner always reports ok=false.
func NewRing(members []ids.NodeID, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make([]ids.NodeID, 0, len(members))
	seen := make(map[ids.NodeID]struct{}, len(members))
	for _, m := range members {
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		uniq = append(uniq, m)
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	r := &Ring{
		points:  make([]point, 0, len(uniq)*vnodes),
		members: uniq,
	}
	for _, m := range uniq {
		base := mix64(uint64(m) + 0x9e3779b97f4a7c15)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:  mix64(base ^ uint64(v)*0xbf58476d1ce4e5b9),
				owner: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// Owner returns the member whose shard the activity ID hashes into.
// ok is false only for an empty ring.
func (r *Ring) Owner(id ids.ActivityID) (ids.NodeID, bool) {
	if r == nil || len(r.points) == 0 {
		return 0, false
	}
	h := KeyHash(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner, true
}

// Members returns the ring's member set, sorted. Callers must not
// mutate the returned slice.
func (r *Ring) Members() []ids.NodeID {
	if r == nil {
		return nil
	}
	return r.members
}

// Has reports whether m is a ring member.
func (r *Ring) Has(m ids.NodeID) bool {
	if r == nil {
		return false
	}
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i] >= m })
	return i < len(r.members) && r.members[i] == m
}

// KeyHash is the placement hash for an activity ID. Exported so tests
// can reason about the ring directly.
func KeyHash(id ids.ActivityID) uint64 {
	return mix64(uint64(id.Node)<<32 | uint64(id.Seq))
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mixer, so
// consecutive node/seq pairs land uniformly on the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
