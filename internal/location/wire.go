package location

import (
	"encoding/binary"
	"errors"

	"repro/internal/ids"
)

// Directory envelope tags. They ride the application transport class
// next to the request/future envelopes (kinds 1..7), so they sit in a
// disjoint byte range.
const (
	TagAnnounce = 0xA1 // one-way: batch of rebinds for the receiving shard / cache
	TagQuery    = 0xA2 // call: where does this activity live now?
	TagReply    = 0xA3 // call response to TagQuery
)

// ErrMalformed reports a directory envelope that failed to decode.
var ErrMalformed = errors.New("location: malformed directory envelope")

// maxAnnounce bounds the rebind count a decoder will accept; an
// announce batch is built from per-beat gossip and handoff slices, far
// below this.
const maxAnnounce = 1 << 16

// Rebind maps a stale activity identity to a fresher one.
type Rebind struct {
	Old, New ids.ActivityID
}

// AppendAnnounce encodes a TagAnnounce envelope:
//
//	tag(1) | count(uvarint) | count × (old node,seq | new node,seq) as LE uint32s
func AppendAnnounce(buf []byte, rebinds []Rebind) []byte {
	buf = append(buf, TagAnnounce)
	buf = binary.AppendUvarint(buf, uint64(len(rebinds)))
	for _, rb := range rebinds {
		buf = appendID(buf, rb.Old)
		buf = appendID(buf, rb.New)
	}
	return buf
}

// DecodeAnnounce parses a TagAnnounce envelope.
func DecodeAnnounce(p []byte) ([]Rebind, error) {
	if len(p) == 0 || p[0] != TagAnnounce {
		return nil, ErrMalformed
	}
	p = p[1:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxAnnounce {
		return nil, ErrMalformed
	}
	if n > 1 && p[n-1] == 0 { // non-minimal varint: codec is canonical
		return nil, ErrMalformed
	}
	p = p[n:]
	if uint64(len(p)) != count*16 {
		return nil, ErrMalformed
	}
	out := make([]Rebind, count)
	for i := range out {
		out[i].Old, p = readID(p)
		out[i].New, p = readID(p)
	}
	return out, nil
}

// AppendQuery encodes a TagQuery envelope: tag(1) | id node,seq.
func AppendQuery(buf []byte, id ids.ActivityID) []byte {
	buf = append(buf, TagQuery)
	return appendID(buf, id)
}

// DecodeQuery parses a TagQuery envelope.
func DecodeQuery(p []byte) (ids.ActivityID, error) {
	if len(p) != 9 || p[0] != TagQuery {
		return ids.Nil, ErrMalformed
	}
	id, _ := readID(p[1:])
	return id, nil
}

// AppendReply encodes a TagReply envelope: tag(1) | known(1) | id.
// When known is false the id is ignored by decoders (encoded as Nil).
func AppendReply(buf []byte, new ids.ActivityID, known bool) []byte {
	buf = append(buf, TagReply)
	if known {
		buf = append(buf, 1)
		return appendID(buf, new)
	}
	buf = append(buf, 0)
	return appendID(buf, ids.Nil)
}

// DecodeReply parses a TagReply envelope.
func DecodeReply(p []byte) (new ids.ActivityID, known bool, err error) {
	if len(p) != 10 || p[0] != TagReply || p[1] > 1 {
		return ids.Nil, false, ErrMalformed
	}
	id, _ := readID(p[2:])
	if p[1] == 0 {
		if id != ids.Nil { // canonical form zeroes the ignored id
			return ids.Nil, false, ErrMalformed
		}
		return ids.Nil, false, nil
	}
	return id, true, nil
}

func appendID(buf []byte, id ids.ActivityID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id.Node))
	return binary.LittleEndian.AppendUint32(buf, id.Seq)
}

func readID(p []byte) (ids.ActivityID, []byte) {
	id := ids.ActivityID{
		Node: ids.NodeID(binary.LittleEndian.Uint32(p)),
		Seq:  binary.LittleEndian.Uint32(p[4:]),
	}
	return id, p[8:]
}
