package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ids"
	"repro/internal/transport"
)

// The wire framing: every message on a connection is one length-prefixed
// frame (see WIRE.md for the normative description).
//
//	uint32  BE  length of everything after this field (= frameHeaderLen + len(payload))
//	byte        frame type (frameOneWay | frameCall | frameResponse | frameBatch)
//	byte        traffic class (transport.Class; 0 for frameBatch — each
//	            inner message carries its own class)
//	byte        flags (frameResponse only; 0 otherwise)
//	uint32  BE  source node
//	uint32  BE  destination node
//	uint64  BE  call sequence number (0 for one-way and batch frames)
//	bytes       payload (the runtime envelope; opaque to the transport —
//	            for frameBatch, a transport batch envelope, WIRE.md §5)
//
// A call's response travels back over the same connection carrying the
// call's sequence number, which is how responses reach a caller that the
// callee could never connect to (§2.2 firewall asymmetry).
const (
	frameOneWay byte = iota + 1
	frameCall
	frameResponse
	frameBatch
	// frameHello is the first frame of every outbound connection: its
	// payload is the sender process's listen address, so the receiving
	// process learns how to dial the source node back without any
	// out-of-band AddPeer (WIRE.md §8). It carries no class and expects
	// no response.
	frameHello
)

// Response flags.
const (
	// flagUnknownNode reports that the receiving process has no handler
	// registered for the destination node.
	flagUnknownNode byte = 1 << 0
)

// frameHeaderLen is the fixed header size after the length prefix.
const frameHeaderLen = 1 + 1 + 1 + 4 + 4 + 8

// maxFrameSize bounds a frame's declared length; larger frames indicate a
// corrupt or hostile peer and kill the connection. Senders enforce the
// matching maxPayloadSize bound up front, so an oversized payload is an
// error at the caller, never a desynced stream at the receiver.
const (
	maxFrameSize   = 64 << 20
	maxPayloadSize = maxFrameSize - frameHeaderLen
)

// frame is one decoded transport frame.
type frame struct {
	typ     byte
	class   transport.Class
	flags   byte
	src     ids.NodeID
	dst     ids.NodeID
	seq     uint64
	payload []byte
}

// appendFrame encodes f after buf, returning the extended slice.
func appendFrame(buf []byte, f frame) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameHeaderLen+len(f.payload)))
	buf = append(buf, f.typ, byte(f.class), f.flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.dst))
	buf = binary.BigEndian.AppendUint64(buf, f.seq)
	return append(buf, f.payload...)
}

// decodeFrame decodes one frame from buf, the length-delimited body that
// followed a frame's length prefix. The payload aliases buf.
func decodeFrame(buf []byte) (frame, error) {
	if len(buf) < frameHeaderLen || len(buf) > maxFrameSize {
		return frame{}, fmt.Errorf("tcpnet: bad frame length %d", len(buf))
	}
	f := frame{
		typ:   buf[0],
		class: transport.Class(buf[1]),
		flags: buf[2],
		src:   ids.NodeID(binary.BigEndian.Uint32(buf[3:])),
		dst:   ids.NodeID(binary.BigEndian.Uint32(buf[7:])),
		seq:   binary.BigEndian.Uint64(buf[11:]),
	}
	if len(buf) > frameHeaderLen {
		f.payload = buf[frameHeaderLen:]
	}
	if f.typ < frameOneWay || f.typ > frameHello {
		return frame{}, fmt.Errorf("tcpnet: bad frame type %d", f.typ)
	}
	return f, nil
}

// readFrame reads and decodes one frame from r into a fresh buffer.
func readFrame(r io.Reader) (frame, error) {
	f, _, err := readFrameReuse(r, nil)
	return f, err
}

// readFrameReuse reads one frame from r, reusing buf when it is large
// enough. It returns the (possibly grown) buffer for the caller's next
// read: the frame's payload aliases it, so the caller must finish with
// the frame before reusing the buffer. This is the receive loop's
// allocation-free steady state.
func readFrameReuse(r io.Reader, buf []byte) (frame, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, buf, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrameSize {
		return frame{}, buf, fmt.Errorf("tcpnet: bad frame length %d", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		return frame{}, buf, err
	}
	f, err := decodeFrame(buf[:n])
	return f, buf, err
}
