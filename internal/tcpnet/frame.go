package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ids"
	"repro/internal/transport"
)

// The wire framing: every message on a connection is one length-prefixed
// frame (see WIRE.md for the normative description).
//
//	uint32  BE  length of everything after this field (= frameHeaderLen + len(payload))
//	byte        frame type (frameOneWay | frameCall | frameResponse)
//	byte        traffic class (transport.Class)
//	byte        flags (frameResponse only; 0 otherwise)
//	uint32  BE  source node
//	uint32  BE  destination node
//	uint64  BE  call sequence number (0 for one-way frames)
//	bytes       payload (the runtime envelope; opaque to the transport)
//
// A call's response travels back over the same connection carrying the
// call's sequence number, which is how responses reach a caller that the
// callee could never connect to (§2.2 firewall asymmetry).
const (
	frameOneWay byte = iota + 1
	frameCall
	frameResponse
)

// Response flags.
const (
	// flagUnknownNode reports that the receiving process has no handler
	// registered for the destination node.
	flagUnknownNode byte = 1 << 0
)

// frameHeaderLen is the fixed header size after the length prefix.
const frameHeaderLen = 1 + 1 + 1 + 4 + 4 + 8

// maxFrameSize bounds a frame's declared length; larger frames indicate a
// corrupt or hostile peer and kill the connection. Senders enforce the
// matching maxPayloadSize bound up front, so an oversized payload is an
// error at the caller, never a desynced stream at the receiver.
const (
	maxFrameSize   = 64 << 20
	maxPayloadSize = maxFrameSize - frameHeaderLen
)

// frame is one decoded transport frame.
type frame struct {
	typ     byte
	class   transport.Class
	flags   byte
	src     ids.NodeID
	dst     ids.NodeID
	seq     uint64
	payload []byte
}

// appendFrame encodes f after buf, returning the extended slice.
func appendFrame(buf []byte, f frame) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameHeaderLen+len(f.payload)))
	buf = append(buf, f.typ, byte(f.class), f.flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.dst))
	buf = binary.BigEndian.AppendUint64(buf, f.seq)
	return append(buf, f.payload...)
}

// readFrame reads and decodes one frame from r.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeaderLen || n > maxFrameSize {
		return frame{}, fmt.Errorf("tcpnet: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	f := frame{
		typ:   buf[0],
		class: transport.Class(buf[1]),
		flags: buf[2],
		src:   ids.NodeID(binary.BigEndian.Uint32(buf[3:])),
		dst:   ids.NodeID(binary.BigEndian.Uint32(buf[7:])),
		seq:   binary.BigEndian.Uint64(buf[11:]),
	}
	if n > frameHeaderLen {
		f.payload = buf[frameHeaderLen:]
	}
	if f.typ < frameOneWay || f.typ > frameResponse {
		return frame{}, fmt.Errorf("tcpnet: bad frame type %d", f.typ)
	}
	return f, nil
}
