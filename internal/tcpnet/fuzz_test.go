package tcpnet

// Fuzz and property tests of the TCP framing layer, including the PR 3
// batch envelope: a hostile or corrupt peer must never panic the decoder
// or desync it into accepting garbage.

import (
	"bytes"
	"testing"

	"repro/internal/transport"
)

// frameSeeds returns representative frames of every type.
func frameSeeds() []frame {
	return []frame{
		{typ: frameOneWay, class: transport.ClassApp, src: 1, dst: 2, payload: []byte("request")},
		{typ: frameOneWay, class: transport.ClassFuture, src: 7, dst: 1},
		{typ: frameCall, class: transport.ClassDGC, src: 3, dst: 4, seq: 99, payload: bytes.Repeat([]byte{0xAB}, 33)},
		{typ: frameResponse, class: transport.ClassDGC, flags: flagUnknownNode, src: 4, dst: 3, seq: 99},
		{typ: frameBatch, src: 1, dst: 2, payload: transport.AppendBatch(nil, []transport.BatchItem{
			{Class: transport.ClassApp, Payload: []byte("one")},
			{Class: transport.ClassFuture, Payload: []byte("two")},
			{Class: transport.ClassDGC, Payload: nil},
		})},
	}
}

// TestFrameSeedsRoundTrip checks appendFrame → readFrame is the identity for
// every frame type, batch frames included.
func TestFrameSeedsRoundTrip(t *testing.T) {
	for i, f := range frameSeeds() {
		enc := appendFrame(nil, f)
		got, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.typ != f.typ || got.class != f.class || got.flags != f.flags ||
			got.src != f.src || got.dst != f.dst || got.seq != f.seq ||
			!bytes.Equal(got.payload, f.payload) {
			t.Fatalf("frame %d: round trip %+v != %+v", i, got, f)
		}
	}
}

// TestBatchFrameRoundTrip is the end-to-end pack/unpack property of a
// batch frame: encode a batch envelope into a frame, read it back, walk
// it, and require the original messages in order.
func TestBatchFrameRoundTrip(t *testing.T) {
	items := []transport.BatchItem{
		{Class: transport.ClassApp, Payload: []byte("alpha")},
		{Class: transport.ClassApp, Payload: bytes.Repeat([]byte("b"), 300)},
		{Class: transport.ClassFuture, Payload: nil},
		{Class: transport.ClassDGC, Payload: []byte{0}},
	}
	f := frame{typ: frameBatch, src: 5, dst: 6, payload: transport.AppendBatch(nil, items)}
	got, err := readFrame(bytes.NewReader(appendFrame(nil, f)))
	if err != nil {
		t.Fatal(err)
	}
	var walked []transport.BatchItem
	if err := transport.WalkBatch(got.payload, func(class transport.Class, payload []byte) {
		walked = append(walked, transport.BatchItem{Class: class, Payload: append([]byte(nil), payload...)})
	}); err != nil {
		t.Fatal(err)
	}
	if len(walked) != len(items) {
		t.Fatalf("walked %d items, want %d", len(walked), len(items))
	}
	for i := range items {
		if walked[i].Class != items[i].Class || !bytes.Equal(walked[i].Payload, items[i].Payload) {
			t.Fatalf("item %d: %v != %v", i, walked[i], items[i])
		}
	}
}

// TestReadFrameRejectsCorruption exercises the explicit rejection paths.
func TestReadFrameRejectsCorruption(t *testing.T) {
	cases := map[string][]byte{
		"short length": {0, 0},
		"tiny frame":   {0, 0, 0, 1, 9},
		"huge frame":   {0xFF, 0xFF, 0xFF, 0xFF},
		"bad type":     appendFrame(nil, frame{typ: 0x7F, src: 1, dst: 2}),
		"truncated":    appendFrame(nil, frame{typ: frameOneWay, src: 1, dst: 2, payload: []byte("xyz")})[:10],
		"zero type":    appendFrame(nil, frame{typ: 0, src: 1, dst: 2}),
	}
	for name, data := range cases {
		if _, err := readFrame(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// FuzzFrameDecode feeds arbitrary byte streams to the frame reader (and,
// for batch frames, the envelope walker). It must fail cleanly or
// round-trip exactly — never panic, never accept a frame that re-encodes
// differently.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range frameSeeds() {
		f.Add(appendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 19})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		fr, err := readFrame(r)
		if err != nil {
			return
		}
		// Whatever was accepted must re-encode to the consumed prefix.
		consumed := len(data) - r.Len()
		if !bytes.Equal(appendFrame(nil, fr), data[:consumed]) {
			t.Fatalf("accepted frame re-encodes differently (consumed %d)", consumed)
		}
		if fr.typ == frameBatch {
			// The walker must not panic on whatever payload arrived.
			_ = transport.WalkBatch(fr.payload, func(transport.Class, []byte) {})
		}
	})
}

// FuzzFrameDecodeReuse cross-checks the buffer-reusing reader against the
// plain one on identical input: same accept/reject decision, same frame.
func FuzzFrameDecodeReuse(f *testing.F) {
	for _, fr := range frameSeeds() {
		f.Add(appendFrame(nil, fr))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, errPlain := readFrame(bytes.NewReader(data))
		scratch := make([]byte, 3) // deliberately small: force the grow path
		reused, _, errReuse := readFrameReuse(bytes.NewReader(data), scratch)
		if (errPlain == nil) != (errReuse == nil) {
			t.Fatalf("readers disagree: %v vs %v", errPlain, errReuse)
		}
		if errPlain != nil {
			return
		}
		if plain.typ != reused.typ || plain.class != reused.class || plain.flags != reused.flags ||
			plain.src != reused.src || plain.dst != reused.dst || plain.seq != reused.seq ||
			!bytes.Equal(plain.payload, reused.payload) {
			t.Fatal("readers decoded different frames")
		}
	})
}
