package tcpnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// recorder is a test handler recording deliveries.
type recorder struct {
	mu     sync.Mutex
	oneWay []string
	calls  []string
	reply  []byte
}

func (r *recorder) HandleOneWay(from ids.NodeID, class transport.Class, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.oneWay = append(r.oneWay, fmt.Sprintf("%v/%v/%s", from, class, payload))
}

func (r *recorder) HandleCall(from ids.NodeID, class transport.Class, payload []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, fmt.Sprintf("%v/%v/%s", from, class, payload))
	return r.reply
}

func (r *recorder) received() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.oneWay...)
}

func newNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	in := frame{
		typ:     frameCall,
		class:   transport.ClassDGC,
		flags:   flagUnknownNode,
		src:     7,
		dst:     9,
		seq:     1 << 40,
		payload: []byte("hello"),
	}
	var buf bytes.Buffer
	buf.Write(appendFrame(nil, in))
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.typ != in.typ || out.class != in.class || out.flags != in.flags ||
		out.src != in.src || out.dst != in.dst || out.seq != in.seq ||
		string(out.payload) != string(in.payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// A huge declared length must not allocate/hang.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("want error on oversized frame")
	}
	// Unknown frame type.
	bad := appendFrame(nil, frame{typ: 99, src: 1, dst: 2})
	if _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("want error on bad frame type")
	}
}

func TestOneWayDeliveryAndFIFO(t *testing.T) {
	n := newNet(t, Config{})
	var rec recorder
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	const total = 200
	for i := 0; i < total; i++ {
		if err := ep.Send(2, transport.ClassApp, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(rec.received()) == total })
	got := rec.received()
	for i, s := range got {
		want := fmt.Sprintf("node-1/app/m%03d", i)
		if s != want {
			t.Fatalf("delivery %d = %q, want %q (FIFO violated)", i, s, want)
		}
	}
}

func TestCallRoundTrip(t *testing.T) {
	n := newNet(t, Config{})
	rec := recorder{reply: []byte("pong")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	resp, err := ep.Call(2, transport.ClassDGC, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pong" {
		t.Fatalf("resp = %q, want pong", resp)
	}
}

func TestCallDoesNotRaceOneWays(t *testing.T) {
	// A call and later one-ways from the same source: the one-ways must
	// not be delivered before the call's handler ran (§3.2 FIFO).
	n := newNet(t, Config{})
	rec := recorder{reply: []byte("r")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	done := make(chan error, 1)
	go func() {
		_, err := ep.Call(2, transport.ClassDGC, []byte("first"))
		done <- err
	}()
	// Wait until the call frame is in flight, then send a one-way.
	waitFor(t, func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return len(rec.calls) == 1
	})
	if err := ep.Send(2, transport.ClassApp, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.received()) == 1 })
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.calls) != 1 || rec.oneWay[0] != "node-1/app/second" {
		t.Fatalf("order violated: calls=%v oneWay=%v", rec.calls, rec.oneWay)
	}
}

func TestResponseRidesCallersConnection(t *testing.T) {
	// A firewall forbids 2 -> 1 entirely; calls 1 -> 2 still complete
	// because the response is multiplexed back over 1's connection.
	n := newNet(t, Config{
		Reachable: func(src, dst ids.NodeID) bool { return src == 1 },
	})
	rec := recorder{reply: []byte("through")}
	n.Register(2, &rec)
	ep1 := n.Register(1, &recorder{})
	ep2 := n.Register(2, &rec)
	if err := ep2.Send(1, transport.ClassApp, []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	resp, err := ep1.Call(2, transport.ClassDGC, []byte("in"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "through" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestUnknownNodeAndClosed(t *testing.T) {
	n := newNet(t, Config{})
	ep := n.Register(1, &recorder{})
	if err := ep.Send(99, transport.ClassApp, nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if _, err := ep.Call(99, transport.ClassApp, nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	n.Register(2, &recorder{})
	n.Close()
	if err := ep.Send(2, transport.ClassApp, nil); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err after close = %v, want ErrClosed", err)
	}
}

func TestDeregisterMakesNodeUnknown(t *testing.T) {
	n := newNet(t, Config{})
	rec := recorder{reply: []byte("r")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	if _, err := ep.Call(2, transport.ClassDGC, []byte("m")); err != nil {
		t.Fatal(err)
	}
	n.Deregister(2)
	if _, err := ep.Call(2, transport.ClassDGC, nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("Call after Deregister = %v, want ErrUnknownNode", err)
	}
}

func TestAccountingPerClass(t *testing.T) {
	n := newNet(t, Config{})
	rec := recorder{reply: []byte("12345678")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	if err := ep.Send(2, transport.ClassApp, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call(2, transport.ClassDGC, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	// Intra-node traffic is never accounted.
	if err := ep.Send(1, transport.ClassApp, []byte("local")); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if snap.Bytes[transport.ClassApp] != 4 || snap.Messages[transport.ClassApp] != 1 {
		t.Fatalf("app = %d bytes / %d msgs, want 4 / 1",
			snap.Bytes[transport.ClassApp], snap.Messages[transport.ClassApp])
	}
	// A call accounts request and response at the caller: 2 + 8 bytes.
	if snap.Bytes[transport.ClassDGC] != 10 || snap.Messages[transport.ClassDGC] != 2 {
		t.Fatalf("dgc = %d bytes / %d msgs, want 10 / 2",
			snap.Bytes[transport.ClassDGC], snap.Messages[transport.ClassDGC])
	}
	n.ResetCounters()
	if n.Snapshot().Total() != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	// Many goroutines calling over the same pair connection: every caller
	// must get its own response back (sequence-number multiplexing).
	n := newNet(t, Config{})
	echo := handlerFunc(func(_ ids.NodeID, _ transport.Class, payload []byte) []byte {
		return append([]byte("re:"), payload...)
	})
	n.Register(2, echo)
	ep := n.Register(1, &recorder{})
	const callers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, callers*per)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := fmt.Sprintf("c%d-%d", g, i)
				resp, err := ep.Call(2, transport.ClassApp, []byte(req))
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != "re:"+req {
					errs <- fmt.Errorf("resp %q for req %q", resp, req)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// handlerFunc adapts a call function to transport.Handler.
type handlerFunc func(from ids.NodeID, class transport.Class, payload []byte) []byte

func (f handlerFunc) HandleOneWay(from ids.NodeID, class transport.Class, payload []byte) {
	f(from, class, payload)
}
func (f handlerFunc) HandleCall(from ids.NodeID, class transport.Class, payload []byte) []byte {
	return f(from, class, payload)
}

func TestTwoProcesses(t *testing.T) {
	// Two Network instances = two processes, wired by Peers address books.
	server := newNet(t, Config{})
	rec := recorder{reply: []byte("remote-pong")}
	server.Register(10, &rec)

	client := newNet(t, Config{Peers: map[ids.NodeID]string{10: server.Addr()}})
	ep := client.Register(1, &recorder{})

	resp, err := ep.Call(10, transport.ClassApp, []byte("remote-ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "remote-pong" {
		t.Fatalf("resp = %q", resp)
	}
	if err := ep.Send(10, transport.ClassFuture, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.received()) == 1 })

	// The server process deregisters the node: remote calls now fail with
	// the unknown-node response flag.
	server.Deregister(10)
	if _, err := ep.Call(10, transport.ClassApp, nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestReconnectAfterConnDrop(t *testing.T) {
	n := newNet(t, Config{})
	var rec recorder
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	if err := ep.Send(2, transport.ClassApp, []byte("a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.received()) == 1 })

	// Kill the pooled outbound connection under the endpoint.
	n.mu.Lock()
	cc := n.conns[pairKey{src: 1, dst: 2}]
	n.mu.Unlock()
	if cc == nil {
		t.Fatal("no pooled connection")
	}
	_ = cc.c.Close()

	// The next send must transparently re-dial.
	if err := ep.Send(2, transport.ClassApp, []byte("b")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.received()) == 2 })
	n.mu.Lock()
	fresh := n.conns[pairKey{src: 1, dst: 2}]
	n.mu.Unlock()
	if fresh == cc {
		t.Fatal("connection was not replaced")
	}
}

func TestCallTimeoutUnwedgesCaller(t *testing.T) {
	// A handler that never answers stands in for a hung peer: the call
	// must fail with ErrCallTimeout instead of blocking forever.
	n := newNet(t, Config{CallTimeout: 50 * time.Millisecond})
	block := make(chan struct{})
	defer close(block)
	stuck := handlerFunc(func(_ ids.NodeID, _ transport.Class, _ []byte) []byte {
		<-block
		return nil
	})
	n.Register(2, stuck)
	ep := n.Register(1, &recorder{})
	start := time.Now()
	_, err := ep.Call(2, transport.ClassDGC, []byte("x"))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout did not bound the call")
	}
}

func TestOversizedPayloadRejectedAtSender(t *testing.T) {
	n := newNet(t, Config{})
	n.Register(2, &recorder{})
	ep := n.Register(1, &recorder{})
	huge := make([]byte, maxPayloadSize+1)
	if err := ep.Send(2, transport.ClassApp, huge); err == nil {
		t.Fatal("oversized Send must fail at the sender")
	}
	if _, err := ep.Call(2, transport.ClassApp, huge); err == nil {
		t.Fatal("oversized Call must fail at the sender")
	}
	if n.Snapshot().Total() != 0 {
		t.Fatal("rejected payloads must not be accounted")
	}
	// The connection (if any) must stay usable for sane payloads.
	if err := ep.Send(2, transport.ClassApp, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownNodeCallNotAccounted(t *testing.T) {
	// A call answered with the unknown-node flag must leave the counters
	// as simnet would: untouched.
	server := newNet(t, Config{})
	client := newNet(t, Config{Peers: map[ids.NodeID]string{10: server.Addr()}})
	ep := client.Register(1, &recorder{})
	if _, err := ep.Call(10, transport.ClassDGC, []byte("beat")); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if got := client.Snapshot().Total(); got != 0 {
		t.Fatalf("accounted %d bytes for an unknown-node call, want 0", got)
	}
}

func TestCloseFailsPendingCalls(t *testing.T) {
	n := newNet(t, Config{})
	block := make(chan struct{})
	slow := handlerFunc(func(_ ids.NodeID, _ transport.Class, _ []byte) []byte {
		<-block
		return nil
	})
	n.Register(2, slow)
	ep := n.Register(1, &recorder{})
	done := make(chan error, 1)
	go func() {
		_, err := ep.Call(2, transport.ClassDGC, []byte("x"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	close(block)
	n.Close()
	if err := <-done; err != nil {
		// Either outcome is legal: the response won the race, or the
		// close failed the call. A hang is the only failure mode.
		t.Logf("pending call failed with: %v", err)
	}
}

func TestRemovePeerForgetsAddressAndFailsConns(t *testing.T) {
	server := newNet(t, Config{})
	rec := recorder{reply: []byte("pong")}
	server.Register(10, &rec)

	client := newNet(t, Config{Peers: map[ids.NodeID]string{10: server.Addr()}})
	ep := client.Register(1, &recorder{})
	if _, err := ep.Call(10, transport.ClassApp, []byte("ping")); err != nil {
		t.Fatal(err)
	}

	client.RemovePeer(10)
	// The address book entry is gone: new traffic fails fast.
	if _, err := ep.Call(10, transport.ClassApp, nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("call after RemovePeer = %v, want ErrUnknownNode", err)
	}
	if err := ep.Send(10, transport.ClassApp, nil); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("send after RemovePeer = %v, want ErrUnknownNode", err)
	}
	// The pooled per-pair connection state was torn down with the entry.
	client.mu.Lock()
	_, pooled := client.conns[pairKey{src: 1, dst: 10}]
	client.mu.Unlock()
	if pooled {
		t.Fatal("pooled connection survived RemovePeer")
	}

	// Re-adding the peer restores the route with a fresh dial.
	client.AddPeer(10, server.Addr())
	if _, err := ep.Call(10, transport.ClassApp, []byte("again")); err != nil {
		t.Fatalf("call after re-AddPeer: %v", err)
	}
}

func TestHelloTeachesDialBackAddress(t *testing.T) {
	// B knows nothing about A's address up front: the hello frame on A's
	// first connection must teach B how to dial node 1 back.
	a := newNet(t, Config{})
	recA := recorder{reply: []byte("a-pong")}

	b := newNet(t, Config{})
	recB := recorder{reply: []byte("b-pong")}
	b.Register(2, &recB)

	a.AddPeer(2, b.Addr())
	epA := a.Register(1, &recA)
	if _, err := epA.Call(2, transport.ClassApp, []byte("hi")); err != nil {
		t.Fatal(err)
	}

	// B never ran AddPeer for node 1, yet the return path works: the
	// hello on A's connection taught B node 1's dial-back address.
	epB := b.Register(2, &recB)
	resp, err := epB.Call(1, transport.ClassApp, []byte("back"))
	if err != nil {
		t.Fatalf("dial-back call failed: %v (hello not applied?)", err)
	}
	if string(resp) != "a-pong" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestCallAddrReachesProcessHandler(t *testing.T) {
	server := newNet(t, Config{})
	client := newNet(t, Config{})

	// No process handler installed yet: the exchange is answered with the
	// unknown-node flag.
	if _, err := client.CallAddr(server.Addr(), transport.ClassCluster, []byte("join")); !errors.Is(err, transport.ErrUnknownNode) {
		t.Fatalf("CallAddr without handler = %v, want ErrUnknownNode", err)
	}

	server.SetProcessHandler(handlerFunc(func(from ids.NodeID, class transport.Class, payload []byte) []byte {
		if from != 0 || class != transport.ClassCluster {
			t.Errorf("process call from=%v class=%v", from, class)
		}
		return append([]byte("ok:"), payload...)
	}))
	resp, err := client.CallAddr(server.Addr(), transport.ClassCluster, []byte("join"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ok:join" {
		t.Fatalf("resp = %q", resp)
	}
}
