package tcpnet

// Payload-retention canary for the writev batch path. The send-side
// mirror of the transport.Handler ownership contract: SendBatch borrows
// the payload slices only until it returns — writeBatch hands them to
// writev without copying, so any retention past the call would let a
// sender's buffer reuse corrupt frames already "sent". Each payload here
// is self-describing (a seq header plus a fill pattern); senders scribble
// over their buffers the moment SendBatch returns and then reuse them
// for the next batch, while the receiver verifies every delivery's
// pattern at handling time.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ids"
	"repro/internal/transport"
)

// patternVerifier checks each delivered payload against its embedded
// pattern synchronously in the handler (the only window the payload is
// valid, per the Handler contract).
type patternVerifier struct {
	delivered atomic.Int64
	mu        sync.Mutex
	bad       []string
}

func (v *patternVerifier) HandleOneWay(_ ids.NodeID, _ transport.Class, payload []byte) {
	v.delivered.Add(1)
	if len(payload) < 9 {
		v.fail(fmt.Sprintf("short payload: %d bytes", len(payload)))
		return
	}
	seq := binary.LittleEndian.Uint64(payload)
	fill := payload[8]
	for i, b := range payload[9:] {
		if b != fill {
			v.fail(fmt.Sprintf("seq %d: byte %d = %#x, want %#x (buffer reused before write)", seq, i, b, fill))
			return
		}
	}
}

func (v *patternVerifier) HandleCall(_ ids.NodeID, _ transport.Class, _ []byte) []byte { return nil }

func (v *patternVerifier) fail(msg string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.bad) < 10 {
		v.bad = append(v.bad, msg)
	}
}

func (v *patternVerifier) failures() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.bad...)
}

func TestSendBatchPayloadReuseCanary(t *testing.T) {
	n := newNet(t, Config{})
	ver := &patternVerifier{}
	n.Register(2, ver)
	ep := n.Register(1, &recorder{})
	bs, ok := ep.(transport.BatchSender)
	if !ok {
		t.Fatal("tcpnet endpoint does not implement transport.BatchSender")
	}

	const (
		senders = 4
		batches = 150
		perBat  = 8
	)
	var seq atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable buffer set per sender: the same backing arrays
			// carry every batch, so retention past SendBatch would see the
			// next batch's bytes (or the scribble) under a sent frame.
			bufs := make([][]byte, perBat)
			for i := range bufs {
				bufs[i] = make([]byte, 9+16*(i+1))
			}
			items := make([]transport.BatchItem, perBat)
			for b := 0; b < batches; b++ {
				for i := range items {
					p := bufs[i]
					binary.LittleEndian.PutUint64(p, seq.Add(1))
					fill := byte(s<<6) | byte(b+i)&0x3f
					p[8] = fill
					for j := 9; j < len(p); j++ {
						p[j] = fill
					}
					items[i] = transport.BatchItem{Class: transport.ClassApp, Payload: p}
				}
				if err := bs.SendBatch(2, items); err != nil {
					t.Errorf("sender %d batch %d: %v", s, b, err)
					return
				}
				// The borrow ended with the return: scribbling now must not
				// affect anything already sent.
				for i := range bufs {
					for j := range bufs[i] {
						bufs[i][j] = 0xDB
					}
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return ver.delivered.Load() == int64(senders*batches*perBat) })
	if bad := ver.failures(); len(bad) > 0 {
		t.Fatalf("corrupted deliveries: %v", bad)
	}
}
