// Package tcpnet implements the transport.Transport contract over real
// TCP connections, so the active-object runtime and its DGC run unchanged
// across processes and machines.
//
// The paper's algorithm needs nothing from the network beyond what §2.2
// and §3.2 assume, and this package provides exactly that:
//
//   - one persistent connection per (source node, destination node) pair,
//     giving FIFO ordering for all traffic of a pair — DGC messages and
//     responses cannot race with application messages (§3.2);
//   - request/response exchanges multiplexed over the connection the
//     caller opened, identified by a per-connection sequence number, so a
//     referenced activity responds without ever connecting back to its
//     referencers (firewall/NAT asymmetry, §2.2);
//   - automatic reconnect: a broken connection fails its in-flight calls
//     (the TTA machinery absorbs the silence) and the next send dials a
//     fresh connection;
//   - per-class payload byte accounting at the sending endpoint,
//     Snapshot-compatible with internal/simnet so the §5 traffic
//     instrumentation works identically on both substrates.
//
// One Network instance represents one process: it serves every node
// registered on it from a single listener, demultiplexing inbound frames
// by destination node. Nodes living in other processes are resolved
// through the static Peers address book. Pairs whose two ends live in the
// same process still communicate over real (loopback) TCP — only
// node-to-itself traffic takes the direct unaccounted path, exactly like
// simnet's intra-process delivery.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Config parameterizes a Network.
type Config struct {
	// Listen is the TCP address to serve this process's nodes on.
	// Defaults to "127.0.0.1:0" (an ephemeral loopback port; read the
	// bound address back with Addr).
	Listen string
	// Peers maps node identifiers hosted by other processes to the TCP
	// address (host:port) their Network listens on. Nodes registered
	// locally need no entry: they are resolved to this process's own
	// listener. A node in neither place is unknown.
	Peers map[ids.NodeID]string
	// Reachable reports whether src may open a connection to dst,
	// modelling a firewall in front of dst. Defaults to full
	// reachability. Responses are always allowed back over an established
	// exchange — they ride the caller's connection.
	Reachable func(src, dst ids.NodeID) bool
	// MaxComm is the upper bound on one-way communication time fed to the
	// DGC deadline formula (§3.1). Unlike simnet the transport cannot
	// derive it from a latency model, so it must be configured for the
	// deployment; it defaults to 5ms, a comfortable bound for loopback
	// and LAN.
	MaxComm time.Duration
	// DialTimeout bounds connection establishment. Defaults to 5s.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response exchange, so a hung peer
	// (partition without RST, stopped process) cannot wedge a caller —
	// in particular the DGC driver, whose stalled beats would delay
	// every activity of its node. A timed-out call fails like any other
	// transport error and the TTA machinery absorbs it (§4.2). Defaults
	// to 5s; negative disables the bound.
	CallTimeout time.Duration
}

// ErrCallTimeout reports a call that exceeded Config.CallTimeout without
// a response. Check with errors.Is.
var ErrCallTimeout = errors.New("tcpnet: call timed out")

// Network is one process's TCP substrate. Create with New, attach the
// process's nodes with Register, stop with Close. It implements
// transport.Transport.
type Network struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	handlers map[ids.NodeID]transport.Handler
	// processHandler receives process-addressed frames (destination node
	// 0): the cluster bootstrap and gossip traffic of WIRE.md §8.
	processHandler transport.Handler
	peers          map[ids.NodeID]string
	conns          map[pairKey]*clientConn
	inbound        map[net.Conn]struct{}
	closed         bool

	wg sync.WaitGroup

	counters transport.CounterSet
}

var _ transport.Transport = (*Network)(nil)
var _ transport.BatchSender = (*endpoint)(nil)
var _ transport.ProcessCaller = (*Network)(nil)

// bufPool recycles frame encode buffers: the send path's steady state
// allocates nothing per message (the bytes are copied into the
// connection's bufio writer before the buffer is returned).
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// pairKey identifies one ordered (source, destination) node pair; each
// pair owns one persistent connection.
type pairKey struct {
	src, dst ids.NodeID
}

// New creates a Network listening on cfg.Listen and starts its accept
// loop.
func New(cfg Config) (*Network, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.MaxComm == 0 {
		cfg.MaxComm = 5 * time.Millisecond
	}
	if cfg.Reachable == nil {
		cfg.Reachable = func(_, _ ids.NodeID) bool { return true }
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.Listen, err)
	}
	n := &Network{
		cfg:      cfg,
		ln:       ln,
		handlers: make(map[ids.NodeID]transport.Handler),
		peers:    make(map[ids.NodeID]string, len(cfg.Peers)),
		conns:    make(map[pairKey]*clientConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	for node, addr := range cfg.Peers {
		n.peers[node] = addr
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the address the listener is bound to (useful with an
// ephemeral Listen port: other processes put it in their Peers map).
func (n *Network) Addr() string { return n.ln.Addr().String() }

// MaxComm returns the configured upper bound on one-way communication
// time.
func (n *Network) MaxComm() time.Duration { return n.cfg.MaxComm }

// AddPeer maps a node hosted by another process to the TCP address its
// Network listens on, extending (or correcting) the Config.Peers book at
// runtime — the bootstrap order of a multi-process deployment rarely
// allows every address to be known up front. The pair's next dial uses
// the new address; established connections are unaffected.
func (n *Network) AddPeer(node ids.NodeID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[node] = addr
}

// RemovePeer forgets a node's address-book entry and closes the per-peer
// connection state: every pooled outbound connection toward the node is
// failed (its in-flight calls error out) and removed. Without this, peer
// entries and dial state would accumulate forever under cluster churn.
// Inbound connections are untouched — they are per remote process, not
// per node, and die with their dialer.
func (n *Network) RemovePeer(node ids.NodeID) {
	n.mu.Lock()
	delete(n.peers, node)
	var doomed []*clientConn
	for key, cc := range n.conns {
		if key.dst == node {
			doomed = append(doomed, cc)
		}
	}
	n.mu.Unlock()
	for _, cc := range doomed {
		cc.fail(fmt.Errorf("tcpnet: peer %v removed", node))
	}
}

// SetProcessHandler installs the handler for process-addressed frames
// (destination node 0). It implements transport.ProcessCaller.
func (n *Network) SetProcessHandler(h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.processHandler = h
}

// CallAddr performs one request/response exchange with the process
// listening at addr, with no node identifier involved: a one-shot
// connection carrying a single process-addressed call. This is how a
// joining process reaches a seed before it owns any node ID, and how
// membership gossip travels between processes — rare control traffic,
// so the per-exchange dial is deliberate simplicity.
func (n *Network) CallAddr(addr string, class transport.Class, payload []byte) ([]byte, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.mu.Unlock()
	if len(payload) > maxPayloadSize {
		return nil, fmt.Errorf("tcpnet: payload %d bytes exceeds frame limit %d", len(payload), maxPayloadSize)
	}
	c, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
	}
	defer func() { _ = c.Close() }()
	bp := getBuf()
	enc := appendFrame((*bp)[:0], frame{typ: frameCall, class: class, seq: 1, payload: payload})
	_, werr := c.Write(enc)
	*bp = enc[:0]
	putBuf(bp)
	if werr != nil {
		return nil, werr
	}
	n.counters.Account(class, len(payload))
	if n.cfg.CallTimeout > 0 {
		_ = c.SetReadDeadline(time.Now().Add(n.cfg.CallTimeout))
	}
	f, err := readFrame(bufio.NewReader(c))
	if err != nil {
		n.counters.Unaccount(class, len(payload))
		return nil, fmt.Errorf("tcpnet: call %s: %w", addr, err)
	}
	if f.typ != frameResponse {
		n.counters.Unaccount(class, len(payload))
		return nil, fmt.Errorf("tcpnet: call %s: unexpected frame type %d", addr, f.typ)
	}
	if f.flags&flagUnknownNode != 0 {
		// The remote process has no process handler installed.
		n.counters.Unaccount(class, len(payload))
		return nil, fmt.Errorf("%w: process at %s", transport.ErrUnknownNode, addr)
	}
	n.counters.Account(class, len(f.payload))
	return f.payload, nil
}

// Register attaches a handler for node and returns its endpoint.
// Replacing an existing registration is allowed.
func (n *Network) Register(node ids.NodeID, h transport.Handler) transport.Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[node] = h
	return &endpoint{net: n, node: node}
}

// Deregister detaches a node: inbound frames for it are dropped (calls
// are answered with an unknown-node response) and, absent a Peers entry,
// local senders fail with transport.ErrUnknownNode. Used to simulate
// machine crashes.
func (n *Network) Deregister(node ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, node)
}

// Snapshot returns the accounted traffic so far. Accounting happens at
// the sending endpoint, so in a multi-process deployment each process
// sees the traffic its nodes originated (calls include the response bytes
// they pulled back).
func (n *Network) Snapshot() transport.Counters {
	return n.counters.Snapshot()
}

// ResetCounters zeroes the traffic counters.
func (n *Network) ResetCounters() {
	n.counters.Reset()
}

// Close stops the listener, closes every connection (failing in-flight
// calls with transport.ErrClosed) and waits for the network's goroutines
// to exit.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	outbound := make([]*clientConn, 0, len(n.conns))
	for _, cc := range n.conns {
		outbound = append(outbound, cc)
	}
	n.conns = make(map[pairKey]*clientConn)
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()

	_ = n.ln.Close()
	for _, cc := range outbound {
		cc.fail(transport.ErrClosed)
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	n.wg.Wait()
}

// DropConnections forcibly closes every established connection, outbound
// and inbound, without touching the listener or the registered handlers:
// in-flight calls fail, and the next send of each pair dials afresh. It
// simulates a transient network failure (the §4.2 silence the TTA slack
// absorbs) and is the chaos hook the reconnect conformance scenarios and
// the soak subsystem's churn mix are built on.
func (n *Network) DropConnections() {
	n.mu.Lock()
	outbound := make([]*clientConn, 0, len(n.conns))
	for _, cc := range n.conns {
		outbound = append(outbound, cc)
	}
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.mu.Unlock()
	for _, cc := range outbound {
		cc.fail(errors.New("tcpnet: connection dropped"))
	}
	for _, c := range inbound {
		_ = c.Close()
	}
}

// handlerFor returns the locally registered handler for node, if any.
func (n *Network) handlerFor(node ids.NodeID) (transport.Handler, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.handlers[node]
	return h, ok
}

// dispatchHandler resolves an inbound frame's destination: node handlers
// for registered nodes, the process handler for the reserved node 0.
func (n *Network) dispatchHandler(dst ids.NodeID) (transport.Handler, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if dst == 0 {
		return n.processHandler, n.processHandler != nil
	}
	h, ok := n.handlers[dst]
	return h, ok
}

// resolve maps dst to the TCP address serving it: the Peers book for
// remote nodes, this process's own listener for local ones.
func (n *Network) resolve(dst ids.NodeID) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return "", transport.ErrClosed
	}
	if addr, ok := n.peers[dst]; ok {
		return addr, nil
	}
	if _, ok := n.handlers[dst]; ok {
		return n.ln.Addr().String(), nil
	}
	return "", fmt.Errorf("%w: %v", transport.ErrUnknownNode, dst)
}

// ---------------------------------------------------------------------------
// Server side: accept inbound connections and serve their frames.

func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = c.Close()
			return
		}
		n.inbound[c] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(c)
	}
}

// serveConn processes one inbound connection. Frames are handled strictly
// sequentially: this is what turns the one-connection-per-pair invariant
// into per-pair FIFO delivery, and what makes a call exchange occupy the
// connection until its handler returns (§3.2). The read buffer is reused
// across frames (handlers must not retain payloads, per the
// transport.Handler contract), so a busy connection's steady state
// allocates nothing per message.
func (n *Network) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, c)
		n.mu.Unlock()
		_ = c.Close()
	}()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	var buf []byte
	for {
		var f frame
		var err error
		f, buf, err = readFrameReuse(r, buf)
		if err != nil {
			return
		}
		switch f.typ {
		case frameHello:
			// The peer process introduces itself: record how to dial the
			// source node back, replacing the out-of-band AddPeer dance.
			if f.src != 0 && len(f.payload) > 0 {
				n.AddPeer(f.src, string(f.payload))
			}
		case frameOneWay:
			if h, ok := n.dispatchHandler(f.dst); ok {
				h.HandleOneWay(f.src, f.class, f.payload)
			}
			// No handler: drop, like a crashed machine would.
		case frameBatch:
			// One frame, many messages: deliver sequentially, preserving
			// the pair's FIFO order. A corrupt envelope kills the
			// connection like any other framing violation.
			h, ok := n.handlerFor(f.dst)
			if err := transport.WalkBatch(f.payload, func(class transport.Class, payload []byte) {
				if ok {
					h.HandleOneWay(f.src, class, payload)
				}
			}); err != nil {
				return
			}
		case frameCall:
			resp := frame{typ: frameResponse, class: f.class, src: f.dst, dst: f.src, seq: f.seq}
			if h, ok := n.dispatchHandler(f.dst); ok {
				resp.payload = h.HandleCall(f.src, f.class, f.payload)
			} else {
				resp.flags = flagUnknownNode
			}
			rb := getBuf()
			enc := appendFrame((*rb)[:0], resp)
			_, werr := w.Write(enc)
			*rb = enc[:0]
			putBuf(rb)
			if werr != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		default:
			return // responses never arrive on inbound connections
		}
	}
}

// ---------------------------------------------------------------------------
// Client side: one persistent outbound connection per pair.

// callResult is what a pending call receives from the connection's read
// loop.
type callResult struct {
	payload []byte
	flags   byte
	err     error
}

// clientConn is the outbound connection of one (src, dst) pair. Writes
// are serialized by wmu (preserving FIFO among the pair's senders);
// responses are matched to pending calls by sequence number in readLoop.
type clientConn struct {
	net *Network
	key pairKey
	c   net.Conn
	buf *bufio.Writer

	wmu sync.Mutex // serializes frame writes

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan callResult
	dead    bool
	err     error
}

// conn returns the pair's live connection, dialing a fresh one if needed.
func (n *Network) conn(key pairKey, addr string) (*clientConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if cc, ok := n.conns[key]; ok {
		n.mu.Unlock()
		return cc, nil
	}
	n.mu.Unlock()

	// Dial outside the lock; losing the race to a concurrent dialer just
	// closes the extra connection.
	c, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %v via %s: %w", key.dst, addr, err)
	}
	cc := &clientConn{
		net:     n,
		key:     key,
		c:       c,
		buf:     bufio.NewWriter(c),
		pending: make(map[uint64]chan callResult),
	}
	// Introduce this process before any payload frame: the receiver
	// learns the dial-back address of the source node from the hello, so
	// return-path traffic needs no out-of-band AddPeer. The connection is
	// not pooled yet, so the hello is guaranteed to be its first frame.
	if err := cc.writeFrame(frame{typ: frameHello, src: key.src, dst: key.dst, payload: []byte(n.Addr())}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("tcpnet: hello %v via %s: %w", key.dst, addr, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = c.Close()
		return nil, transport.ErrClosed
	}
	if prior, ok := n.conns[key]; ok {
		n.mu.Unlock()
		_ = c.Close()
		return prior, nil
	}
	n.conns[key] = cc
	n.wg.Add(1)
	n.mu.Unlock()
	go cc.readLoop()
	return cc, nil
}

// writeFrame sends one frame, serialized against the pair's other
// senders. The encode buffer is pooled: one frame costs zero allocations
// in steady state.
func (cc *clientConn) writeFrame(f frame) error {
	bp := getBuf()
	enc := appendFrame((*bp)[:0], f)
	err := cc.writeBytes(enc)
	*bp = enc[:0]
	putBuf(bp)
	return err
}

// writeBatch sends items as one batch frame through vectored I/O: only
// the frame header and the per-item batch headers are materialized (into
// one pooled buffer); the payload bytes go to the kernel straight from the
// caller's slices via writev. A batch frame therefore costs one syscall
// and zero payload copies, no matter how many messages or bytes it
// carries. Payloads are borrowed only until the write returns — the
// transport retains nothing — which is the send-side mirror of the
// transport.Handler payload-ownership contract.
func (cc *clientConn) writeBatch(src, dst ids.NodeID, items []transport.BatchItem) error {
	bp := getBuf()
	hdr := (*bp)[:0]
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(frameHeaderLen+transport.BatchSize(items)))
	hdr = append(hdr, frameBatch, 0, 0)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(src))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(dst))
	hdr = binary.BigEndian.AppendUint64(hdr, 0)
	hdr = binary.AppendUvarint(hdr, uint64(len(items)))
	// cuts[i] is where the header bytes preceding item i's payload end.
	// The header segments are sliced out only after hdr is fully built:
	// append may move the backing array, which would invalidate any
	// subslice taken earlier.
	cuts := make([]int, len(items))
	for i, it := range items {
		hdr = append(hdr, byte(it.Class))
		hdr = binary.AppendUvarint(hdr, uint64(len(it.Payload)))
		cuts[i] = len(hdr)
	}
	bufs := make(net.Buffers, 0, 2*len(items))
	prev := 0
	for i := range items {
		bufs = append(bufs, hdr[prev:cuts[i]])
		prev = cuts[i]
		if len(items[i].Payload) > 0 {
			bufs = append(bufs, items[i].Payload)
		}
	}
	err := cc.writeVectored(bufs)
	*bp = hdr[:0]
	putBuf(bp)
	return err
}

// writeVectored writes the segments with one vectored write, serialized
// against the pair's other senders. The connection's bufio writer is
// flushed first so batch frames cannot overtake frames buffered by
// writeBytes, preserving the pair's FIFO order.
func (cc *clientConn) writeVectored(bufs net.Buffers) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.mu.Lock()
	if cc.dead {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.mu.Unlock()
	if err := cc.buf.Flush(); err != nil {
		return err
	}
	_, err := bufs.WriteTo(cc.c)
	return err
}

// writeBytes writes one encoded frame, serialized against the pair's
// other senders, and flushes it to the socket.
func (cc *clientConn) writeBytes(enc []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.mu.Lock()
	if cc.dead {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.mu.Unlock()
	if _, err := cc.buf.Write(enc); err != nil {
		return err
	}
	return cc.buf.Flush()
}

// register allocates a call sequence number and its result channel.
func (cc *clientConn) register() (uint64, chan callResult, error) {
	seq := cc.seq.Add(1)
	ch := make(chan callResult, 1)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.dead {
		return 0, nil, cc.err
	}
	cc.pending[seq] = ch
	return seq, ch, nil
}

// unregister abandons a pending call (used when its write failed).
func (cc *clientConn) unregister(seq uint64) {
	cc.mu.Lock()
	delete(cc.pending, seq)
	cc.mu.Unlock()
}

// readLoop delivers response frames to their pending calls until the
// connection dies.
func (cc *clientConn) readLoop() {
	defer cc.net.wg.Done()
	r := bufio.NewReader(cc.c)
	for {
		f, err := readFrame(r)
		if err != nil {
			cc.fail(fmt.Errorf("tcpnet: connection %v->%v: %w", cc.key.src, cc.key.dst, err))
			return
		}
		if f.typ != frameResponse {
			cc.fail(fmt.Errorf("tcpnet: connection %v->%v: unexpected frame type %d", cc.key.src, cc.key.dst, f.typ))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.seq]
		delete(cc.pending, f.seq)
		cc.mu.Unlock()
		if ok {
			ch <- callResult{payload: f.payload, flags: f.flags}
		}
	}
}

// await blocks for a call's result, bounded by timeout (if positive). On
// timeout the pending entry is dropped, so a late response is discarded
// by readLoop instead of reaching a caller that gave up.
func (cc *clientConn) await(seq uint64, ch chan callResult, timeout time.Duration) (callResult, error) {
	if timeout <= 0 {
		return <-ch, nil
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res, nil
	case <-t.C:
		cc.unregister(seq)
		// The entry may have been resolved between the timer firing and
		// the unregister; prefer the result if it is already there.
		select {
		case res := <-ch:
			return res, nil
		default:
		}
		return callResult{}, fmt.Errorf("%w after %v", ErrCallTimeout, timeout)
	}
}

// fail marks the connection dead, fails its pending calls, closes the
// socket and removes the connection from the pool so the pair's next send
// dials afresh.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.err = err
	pending := cc.pending
	cc.pending = nil
	cc.mu.Unlock()

	_ = cc.c.Close()
	cc.net.mu.Lock()
	if cc.net.conns[cc.key] == cc {
		delete(cc.net.conns, cc.key)
	}
	cc.net.mu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// ---------------------------------------------------------------------------
// Endpoint.

// endpoint implements transport.Endpoint for one registered node.
type endpoint struct {
	net  *Network
	node ids.NodeID
}

// Node returns the endpoint's node identifier.
func (e *endpoint) Node() ids.NodeID { return e.node }

// Send transmits a one-way message to dst with FIFO ordering relative to
// all other traffic from this node to dst.
func (e *endpoint) Send(dst ids.NodeID, class transport.Class, payload []byte) error {
	if e.node == dst {
		// Intra-node: direct delivery, not accounted (paper §5).
		h, ok := e.net.handlerFor(dst)
		if !ok {
			return fmt.Errorf("%w: %v", transport.ErrUnknownNode, dst)
		}
		h.HandleOneWay(e.node, class, payload)
		return nil
	}
	if len(payload) > maxPayloadSize {
		return fmt.Errorf("tcpnet: payload %d bytes exceeds frame limit %d", len(payload), maxPayloadSize)
	}
	addr, err := e.net.resolve(dst)
	if err != nil {
		return err
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		return fmt.Errorf("%w: %v -> %v", transport.ErrUnreachable, e.node, dst)
	}
	key := pairKey{src: e.node, dst: dst}
	f := frame{typ: frameOneWay, class: class, src: e.node, dst: dst, payload: payload}
	var lastErr error
	// A dead pooled connection fails the first write; retry once on a
	// fresh dial so a restarted peer is transparent to senders.
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := e.net.conn(key, addr)
		if err != nil {
			return err
		}
		if lastErr = cc.writeFrame(f); lastErr == nil {
			// Accounted only once transmitted: a failed dial or write
			// moves no bytes, exactly like simnet's unknown-node path.
			e.net.counters.Account(class, len(payload))
			return nil
		}
		cc.fail(lastErr)
	}
	return lastErr
}

// SendBatch transmits several one-way messages to dst in one batch frame:
// one encode buffer, one write, one syscall, one receiver wake-up for the
// whole group, with FIFO preserved relative to the pair's other traffic.
// Groups whose payloads exceed the frame limit are split across several
// batch frames. Accounting stays per inner message and per class, so the
// §5 counters are identical to the unbatched path.
func (e *endpoint) SendBatch(dst ids.NodeID, items []transport.BatchItem) error {
	if len(items) == 0 {
		return nil
	}
	if e.node == dst {
		// Intra-node: direct delivery, not accounted (paper §5).
		h, ok := e.net.handlerFor(dst)
		if !ok {
			return fmt.Errorf("%w: %v", transport.ErrUnknownNode, dst)
		}
		for _, it := range items {
			h.HandleOneWay(e.node, it.Class, it.Payload)
		}
		return nil
	}
	for _, it := range items {
		if len(it.Payload) > maxPayloadSize {
			return fmt.Errorf("tcpnet: payload %d bytes exceeds frame limit %d", len(it.Payload), maxPayloadSize)
		}
	}
	addr, err := e.net.resolve(dst)
	if err != nil {
		return err
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		return fmt.Errorf("%w: %v -> %v", transport.ErrUnreachable, e.node, dst)
	}
	key := pairKey{src: e.node, dst: dst}
	for len(items) > 0 {
		chunk := items
		if transport.BatchSize(chunk) > maxPayloadSize {
			// Oversized group: take the longest prefix that fits one frame
			// (every payload fits alone, so progress is guaranteed).
			n, bytes := 0, 16
			for n < len(chunk) {
				sz := 1 + 10 + len(chunk[n].Payload)
				if n > 0 && bytes+sz > maxPayloadSize {
					break
				}
				bytes += sz
				n++
			}
			chunk = chunk[:n]
		}
		if err := e.sendChunk(key, addr, chunk); err != nil {
			return err
		}
		items = items[len(chunk):]
	}
	return nil
}

// sendChunk writes one frame-sized batch with the same
// retry-once-on-fresh-dial semantics as Send.
func (e *endpoint) sendChunk(key pairKey, addr string, chunk []transport.BatchItem) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := e.net.conn(key, addr)
		if err != nil {
			return err
		}
		if len(chunk) == 1 {
			f := frame{typ: frameOneWay, class: chunk[0].Class, src: key.src, dst: key.dst, payload: chunk[0].Payload}
			lastErr = cc.writeFrame(f)
		} else {
			lastErr = cc.writeBatch(key.src, key.dst, chunk)
		}
		if lastErr == nil {
			for _, it := range chunk {
				e.net.counters.Account(it.Class, len(it.Payload))
			}
			return nil
		}
		cc.fail(lastErr)
	}
	return lastErr
}

// Call performs a request/response exchange with dst. The response comes
// back over this same connection, identified by the call's sequence
// number, so Call succeeds even when dst could never connect to this
// node.
func (e *endpoint) Call(dst ids.NodeID, class transport.Class, payload []byte) ([]byte, error) {
	if e.node == dst {
		h, ok := e.net.handlerFor(dst)
		if !ok {
			return nil, fmt.Errorf("%w: %v", transport.ErrUnknownNode, dst)
		}
		return h.HandleCall(e.node, class, payload), nil
	}
	if len(payload) > maxPayloadSize {
		return nil, fmt.Errorf("tcpnet: payload %d bytes exceeds frame limit %d", len(payload), maxPayloadSize)
	}
	addr, err := e.net.resolve(dst)
	if err != nil {
		return nil, err
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		return nil, fmt.Errorf("%w: %v -> %v", transport.ErrUnreachable, e.node, dst)
	}
	key := pairKey{src: e.node, dst: dst}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := e.net.conn(key, addr)
		if err != nil {
			return nil, err
		}
		seq, ch, err := cc.register()
		if err != nil {
			lastErr = err
			continue // conn died since pooling; re-dial
		}
		f := frame{typ: frameCall, class: class, src: e.node, dst: dst, seq: seq, payload: payload}
		if err := cc.writeFrame(f); err != nil {
			cc.unregister(seq)
			cc.fail(err)
			lastErr = err
			continue
		}
		e.net.counters.Account(class, len(payload))
		res, err := cc.await(seq, ch, e.net.cfg.CallTimeout)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: call %v->%v: %w", e.node, dst, err)
		}
		if res.err != nil {
			// The request may have reached the peer: no blind retry, the
			// caller's machinery (TTA slack, future failure) owns it.
			return nil, res.err
		}
		if res.flags&flagUnknownNode != 0 {
			// simnet accounts nothing for a call to an unknown node;
			// refund the request so the §5 counters stay backend-identical
			// in crash scenarios.
			e.net.counters.Unaccount(class, len(payload))
			return nil, fmt.Errorf("%w: %v", transport.ErrUnknownNode, dst)
		}
		e.net.counters.Account(class, len(res.payload))
		return res.payload, nil
	}
	return nil, lastErr
}
