// Package transport defines the substrate contract the active-object
// runtime communicates over, abstracting the properties the paper's
// algorithm depends on away from any concrete network:
//
//   - FIFO ordered delivery per (source, destination) pair, like the TCP
//     connections of RMI ("DGC messages and responses cannot race with
//     application messages as they are sent over the same FIFO
//     connection", §3.2);
//   - request/response exchange over the connection opened by the caller,
//     so a referenced activity never needs connectivity back to its
//     referencers (firewall/NAT asymmetry, §2.2);
//   - a MaxComm upper bound on one-way communication time, the input of
//     the §3.1 TTA formula;
//   - payload byte accounting per traffic class, the stand-in for the
//     paper's instrumented SOCKS proxy (§5).
//
// Two implementations exist: internal/simnet (in-memory, with injectable
// latency and reachability, used by tests and the paper-scale
// reproductions) and internal/tcpnet (real TCP with length-prefixed
// framing, used to run the runtime multi-process). internal/active
// depends only on this package, so the two are interchangeable per
// environment; the conformance suite in internal/active runs the same
// runtime and DGC scenarios over both.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ids"
)

// Class partitions traffic for accounting, mirroring how the paper
// separates application payload from DGC overhead.
type Class uint8

// Traffic classes.
const (
	// ClassApp is application traffic: requests and their payloads.
	ClassApp Class = iota + 1
	// ClassDGC is DGC messages and DGC responses.
	ClassDGC
	// ClassFuture is future-update traffic (results flowing back).
	ClassFuture
	// ClassCluster is membership and liveness traffic: join/lease
	// exchanges, node-up/dead/left gossip and suspect-path health probes.
	ClassCluster
	// NumClasses is the number of defined classes; valid classes are
	// 1..NumClasses.
	NumClasses = 4
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassApp:
		return "app"
	case ClassDGC:
		return "dgc"
	case ClassFuture:
		return "future"
	case ClassCluster:
		return "cluster"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Errors shared by all transport implementations, so the runtime and the
// conformance tests can match failures with errors.Is regardless of the
// backend in use.
var (
	// ErrUnreachable indicates the reachability rules forbid src → dst.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrUnknownNode indicates the destination was never registered (or
	// has been deregistered, e.g. by a simulated crash).
	ErrUnknownNode = errors.New("transport: unknown node")
	// ErrClosed indicates the transport has been shut down.
	ErrClosed = errors.New("transport: closed")
)

// Handler receives traffic on behalf of a node. Implementations must be
// safe for concurrent use: distinct senders deliver concurrently (only
// per-pair ordering is guaranteed).
//
// Payload slices are owned by the transport and valid only for the
// duration of the call: a handler that needs bytes beyond its return must
// copy them. (The runtime's envelope decoders copy everything they keep,
// which is what lets the TCP backend serve a connection from one reused
// read buffer.)
type Handler interface {
	// HandleOneWay processes a one-way message.
	HandleOneWay(from ids.NodeID, class Class, payload []byte)
	// HandleCall processes a request/response exchange and returns the
	// response payload, which travels back over the same connection. A nil
	// response is valid and means "nothing to say" (e.g. the target
	// activity is gone).
	HandleCall(from ids.NodeID, class Class, payload []byte) []byte
}

// Counters is a snapshot of accounted traffic. Accounting happens at the
// sending endpoint: a one-way message counts its payload once, a call
// counts the request payload and the response payload (both at the
// caller). Intra-node traffic is delivered directly and never accounted,
// as in the paper (§5).
type Counters struct {
	// Bytes maps each class to total payload bytes (both directions of
	// calls included).
	Bytes map[Class]uint64
	// Messages maps each class to the number of payloads transferred.
	Messages map[Class]uint64
}

// Total returns the total accounted bytes across classes.
func (c Counters) Total() uint64 {
	var t uint64
	for _, b := range c.Bytes {
		t += b
	}
	return t
}

// CounterSet is the shared per-class accounting state of a transport
// implementation: both backends embed one so the §5 traffic counters
// cannot diverge structurally. The zero value is ready to use; all
// methods are safe for concurrent use.
type CounterSet struct {
	mu       sync.Mutex
	bytes    [NumClasses + 1]uint64
	messages [NumClasses + 1]uint64
}

// Account records one transferred payload of the given class. Classes
// outside 1..NumClasses are ignored.
func (c *CounterSet) Account(class Class, size int) {
	if class == 0 || class > NumClasses {
		return
	}
	c.mu.Lock()
	c.bytes[class] += uint64(size)
	c.messages[class]++
	c.mu.Unlock()
}

// Unaccount reverses one Account call (e.g. a request whose peer reported
// the destination unknown — an exchange simnet never accounts). It
// saturates at zero so a Reset racing an in-flight exchange cannot
// underflow the counters.
func (c *CounterSet) Unaccount(class Class, size int) {
	if class == 0 || class > NumClasses {
		return
	}
	c.mu.Lock()
	if c.bytes[class] >= uint64(size) {
		c.bytes[class] -= uint64(size)
	} else {
		c.bytes[class] = 0
	}
	if c.messages[class] > 0 {
		c.messages[class]--
	}
	c.mu.Unlock()
}

// Snapshot returns the accounted traffic so far.
func (c *CounterSet) Snapshot() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Counters{Bytes: make(map[Class]uint64), Messages: make(map[Class]uint64)}
	for cls := Class(1); cls <= NumClasses; cls++ {
		out.Bytes[cls] = c.bytes[cls]
		out.Messages[cls] = c.messages[cls]
	}
	return out
}

// Reset zeroes the counters (used between benchmark phases).
func (c *CounterSet) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.bytes {
		c.bytes[i] = 0
		c.messages[i] = 0
	}
}

// Endpoint is one node's attachment point to the substrate, returned by
// Transport.Register. All methods are safe for concurrent use.
type Endpoint interface {
	// Node returns the endpoint's node identifier.
	Node() ids.NodeID

	// Send transmits a one-way message to dst with FIFO ordering relative
	// to all other traffic from this node to dst. Send may return before
	// the message is delivered; delivery is not acknowledged (per §4.1 a
	// lost future update cannot wake anything, and a lost DGC beat is
	// absorbed by the TTA slack).
	Send(dst ids.NodeID, class Class, payload []byte) error

	// Call performs a request/response exchange with dst, blocking until
	// the response arrives. The response travels back over the connection
	// the caller opened, so Call works even when the reachability rules
	// (or a real firewall) forbid dst → src connections. Call traffic is
	// FIFO-ordered with Send traffic to the same destination, and the
	// exchange occupies the connection: later messages from this node to
	// dst are not delivered before the handler returns (§3.2's "DGC
	// messages and responses cannot race with application messages").
	Call(dst ids.NodeID, class Class, payload []byte) ([]byte, error)
}

// ProcessCaller is an optional Transport extension for substrates whose
// processes are addressable independently of the nodes they host (tcpnet:
// one listener per process). It is what cluster bootstrap rides on — a
// joining process must exchange messages with a seed before it owns any
// node identifier. Frames addressed to node 0 (the reserved identifier)
// are process-addressed and delivered to the handler installed with
// SetProcessHandler. The runtime type-asserts its Transport against this
// interface; substrates without process addressing (simnet: one process,
// no bootstrap problem) simply don't implement it.
type ProcessCaller interface {
	// Addr returns the address other processes can reach this one at.
	Addr() string

	// CallAddr performs one request/response exchange with the process
	// listening at addr, without needing any node identifier: a one-shot
	// connection carrying a single process-addressed call. Used for
	// join/lease bootstrap and membership gossip (rare traffic; the
	// per-exchange dial is deliberate simplicity, not a hot path).
	CallAddr(addr string, class Class, payload []byte) ([]byte, error)

	// SetProcessHandler installs the handler for process-addressed
	// frames (destination node 0).
	SetProcessHandler(h Handler)

	// AddPeer maps a node hosted by another process to that process's
	// address (learned from join responses and node-up gossip).
	AddPeer(node ids.NodeID, addr string)

	// RemovePeer forgets a node's address and closes the per-peer
	// connection state — the churn-hygiene counterpart of AddPeer.
	RemovePeer(node ids.NodeID)
}

// Transport is a network substrate instance: the set of connections one
// process (or one simulated world) communicates over. Implementations
// must provide per-pair FIFO, caller-opened exchanges, and per-class
// accounting as documented on Endpoint and Counters.
type Transport interface {
	// Register attaches a handler for node and returns its endpoint.
	// Replacing an existing registration is allowed (used when a node
	// restarts in tests).
	Register(node ids.NodeID, h Handler) Endpoint

	// Deregister detaches a node: subsequent traffic toward it fails with
	// ErrUnknownNode (when the sender can tell) or is dropped. Used to
	// simulate machine crashes (§4.2: an undetected failure is
	// indistinguishable from silence for the DGC).
	Deregister(node ids.NodeID)

	// MaxComm returns an upper bound on one-way communication time, the
	// input of the §3.1 TTA formula.
	MaxComm() time.Duration

	// Snapshot returns the accounted traffic so far.
	Snapshot() Counters

	// ResetCounters zeroes the traffic counters (used between benchmark
	// phases).
	ResetCounters()

	// Close stops delivery and releases the substrate's resources
	// (goroutines, sockets). Pending and subsequent operations fail with
	// ErrClosed. Close is idempotent.
	Close()
}
