//go:build !race

// Alloc-regression gate for the flusher's enqueue side. Excluded under
// the race detector, whose instrumentation changes allocation behavior.
package transport

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestAllocsFlusherLanePush gates the steady-state lane push: with the
// drainer parked on an unexpired linger window, Send is a map lookup
// plus an append into the lane's pending slice — amortized below one
// allocation per push (the only allocations are the slice's geometric
// growth).
func TestAllocsFlusherLanePush(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	ep := &recordingEndpoint{}
	fl := NewFlusher(ep, FlusherConfig{Window: time.Hour, Clock: clock})
	payload := []byte("ping")
	// Warm the lane: the first push creates it and parks its drainer on
	// the hour-long window; a growth round sizes the pending slice.
	for i := 0; i < 300; i++ {
		if err := fl.Send(2, ClassApp, payload, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := fl.Send(2, ClassApp, payload, false); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("lane push: %.2f allocs/op, budget 1", got)
	}
	// Release the parked drainer so Close does not wait out its grace
	// period: advancing past the window flushes the backlog.
	clock.Advance(2 * time.Hour)
	fl.Close()
}
