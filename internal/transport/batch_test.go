package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
)

// TestBatchRoundTrip is the pack/unpack property test of the batch
// envelope: for randomized item sets (count, classes, payload sizes
// including empty), DecodeBatch(AppendBatch(items)) reproduces the items
// exactly, in order.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(17)
		items := make([]BatchItem, n)
		for i := range items {
			p := make([]byte, rng.Intn(64))
			rng.Read(p)
			items[i] = BatchItem{Class: Class(rng.Intn(int(NumClasses)) + 1), Payload: p}
		}
		enc := AppendBatch(nil, items)
		if got, want := len(enc), BatchSize(items); got != want {
			t.Fatalf("trial %d: encoded %d bytes, BatchSize says %d", trial, got, want)
		}
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(dec) != len(items) {
			t.Fatalf("trial %d: %d items decoded, want %d", trial, len(dec), len(items))
		}
		for i := range items {
			if dec[i].Class != items[i].Class || !bytes.Equal(dec[i].Payload, items[i].Payload) {
				t.Fatalf("trial %d item %d: %v != %v", trial, i, dec[i], items[i])
			}
		}
	}
}

// TestWalkBatchRejectsCorruption checks the decoder fails cleanly (no
// panic, no silent success) on truncated and trailing-garbage envelopes.
func TestWalkBatchRejectsCorruption(t *testing.T) {
	good := AppendBatch(nil, []BatchItem{
		{Class: ClassApp, Payload: []byte("abc")},
		{Class: ClassDGC, Payload: []byte("defgh")},
	})
	for cut := 0; cut < len(good); cut++ {
		if err := WalkBatch(good[:cut], func(Class, []byte) {}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := WalkBatch(append(good[:len(good):len(good)], 0), func(Class, []byte) {}); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if err := WalkBatch([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, func(Class, []byte) {}); err == nil {
		t.Fatal("absurd count accepted")
	}
}

// FuzzWalkBatch drives the envelope decoder with arbitrary bytes: it must
// never panic, and anything it accepts must survive a re-encode/re-decode
// round trip unchanged (uvarint lengths may be non-minimal in hostile
// input, so byte-level canonicality is not required — item-level fidelity
// is).
func FuzzWalkBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatch(nil, nil))
	f.Add(AppendBatch(nil, []BatchItem{{Class: ClassApp, Payload: []byte("x")}}))
	f.Add(AppendBatch(nil, []BatchItem{
		{Class: ClassFuture, Payload: nil},
		{Class: ClassDGC, Payload: bytes.Repeat([]byte("y"), 40)},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeBatch(data)
		if err != nil {
			return
		}
		again, err := DecodeBatch(AppendBatch(nil, items))
		if err != nil {
			t.Fatalf("re-decode of accepted envelope failed: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("round trip changed count: %d != %d", len(again), len(items))
		}
		for i := range items {
			if again[i].Class != items[i].Class || !bytes.Equal(again[i].Payload, items[i].Payload) {
				t.Fatalf("round trip changed item %d", i)
			}
		}
	})
}

// recordingEndpoint captures what a flusher writes, for order and
// batching assertions.
type recordingEndpoint struct {
	mu     sync.Mutex
	frames [][]BatchItem // one entry per Send (len 1) or SendBatch
}

func (r *recordingEndpoint) Node() ids.NodeID { return 1 }

func (r *recordingEndpoint) Send(dst ids.NodeID, class Class, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames = append(r.frames, []BatchItem{{Class: class, Payload: payload}})
	return nil
}

func (r *recordingEndpoint) SendBatch(dst ids.NodeID, items []BatchItem) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]BatchItem, len(items))
	copy(cp, items)
	r.frames = append(r.frames, cp)
	return nil
}

func (r *recordingEndpoint) Call(dst ids.NodeID, class Class, payload []byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames = append(r.frames, []BatchItem{{Class: class, Payload: append([]byte("call:"), payload...)}})
	return nil, nil
}

// messages flattens the recorded frames into delivery order.
func (r *recordingEndpoint) messages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, fr := range r.frames {
		for _, it := range fr {
			out = append(out, string(it.Payload))
		}
	}
	return out
}

// TestFlusherPreservesFIFO hammers one lane from a single sender and
// checks the flattened delivery order matches the send order, whatever
// framing the flusher chose; a Call issued afterwards must come last.
func TestFlusherPreservesFIFO(t *testing.T) {
	ep := &recordingEndpoint{}
	fl := NewFlusher(ep, FlusherConfig{Window: time.Millisecond})
	defer fl.Close()
	const total = 200
	for i := 0; i < total; i++ {
		if err := fl.Send(2, ClassApp, []byte(fmt.Sprintf("m%03d", i)), i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fl.Call(2, ClassDGC, []byte("x")); err != nil {
		t.Fatal(err)
	}
	msgs := ep.messages()
	if len(msgs) != total+1 {
		t.Fatalf("%d messages delivered, want %d", len(msgs), total+1)
	}
	for i := 0; i < total; i++ {
		if want := fmt.Sprintf("m%03d", i); msgs[i] != want {
			t.Fatalf("position %d: %q, want %q (FIFO violated)", i, msgs[i], want)
		}
	}
	if msgs[total] != "call:x" {
		t.Fatalf("call delivered at %q, want last", msgs[total])
	}
}

// TestFlusherCloseFlushes checks Close writes out lingering traffic
// instead of dropping it.
func TestFlusherCloseFlushes(t *testing.T) {
	ep := &recordingEndpoint{}
	fl := NewFlusher(ep, FlusherConfig{Window: time.Hour}) // linger ~forever
	for i := 0; i < 5; i++ {
		if err := fl.Send(2, ClassApp, []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	fl.Close()
	if got := len(ep.messages()); got != 5 {
		t.Fatalf("%d messages after Close, want 5 (flush-on-close)", got)
	}
	if err := fl.Send(2, ClassApp, []byte("late"), true); err == nil {
		t.Fatal("send accepted after Close")
	}
}

// TestFlusherCoalesces checks that a burst submitted with SendBatch goes
// out in fewer frames than messages.
func TestFlusherCoalesces(t *testing.T) {
	ep := &recordingEndpoint{}
	fl := NewFlusher(ep, FlusherConfig{Window: time.Millisecond})
	defer fl.Close()
	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{Class: ClassApp, Payload: []byte{byte(i)}}
	}
	if err := fl.SendBatch(2, items); err != nil {
		t.Fatal(err)
	}
	fl.Close()
	ep.mu.Lock()
	frames := len(ep.frames)
	ep.mu.Unlock()
	if got := len(ep.messages()); got != 8 {
		t.Fatalf("%d messages delivered, want 8", got)
	}
	if frames >= 8 {
		t.Fatalf("burst of 8 used %d frames, want coalescing", frames)
	}
}
