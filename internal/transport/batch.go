package transport

// Batch envelope and flusher: the hot-path machinery that lets
// co-destination one-way messages travel in one frame.
//
// The paper's runtime pays one envelope per asynchronous call, future
// update and DGC beat; at scale the per-message overhead (frame header,
// syscall, queue wake-up) bounds throughput long before payload bytes do.
// The batch envelope packs any number of (class, payload) messages of one
// ordered (source, destination) pair into a single transport frame, and
// the Flusher is the per-pair smart-batching engine that decides when a
// frame is full enough to go.
//
// The envelope is backend-independent (WIRE.md §5 is the normative spec);
// internal/simnet delivers it as one queue item, internal/tcpnet as one
// TCP frame. Accounting stays per inner message and per class, so the §5
// traffic counters are identical whether a message travelled alone or
// batched — only frame overhead (never accounted, like frame headers)
// changes.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// BatchItem is one message inside a batch envelope.
type BatchItem struct {
	// Class is the traffic class of this message.
	Class Class
	// Payload is the message body (a runtime envelope, opaque here).
	Payload []byte
}

// BatchSender is implemented by endpoints that can ship several one-way
// messages to one destination in a single frame. Both built-in backends
// implement it; the Flusher falls back to sequential Send calls when the
// endpoint does not.
type BatchSender interface {
	// SendBatch transmits items to dst, in order, with FIFO ordering
	// relative to all other traffic from this endpoint to dst. Delivery
	// semantics per item match Send.
	SendBatch(dst ids.NodeID, items []BatchItem) error
}

// Batch envelope encoding (WIRE.md §5):
//
//	uvarint  count
//	count ×  1 byte class, uvarint payload length, payload bytes
//
// The envelope is the payload of a batch frame (tcpnet) or a single queue
// item (simnet); it never appears inside another envelope.

// AppendBatch encodes items after buf and returns the extended slice.
func AppendBatch(buf []byte, items []BatchItem) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = append(buf, byte(it.Class))
		buf = binary.AppendUvarint(buf, uint64(len(it.Payload)))
		buf = append(buf, it.Payload...)
	}
	return buf
}

// BatchSize returns the encoded size of the batch envelope for items.
func BatchSize(items []BatchItem) int {
	n := uvarintLen(uint64(len(items)))
	for _, it := range items {
		n += 1 + uvarintLen(uint64(len(it.Payload))) + len(it.Payload)
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// WalkBatch decodes a batch envelope, invoking fn once per message in
// order. The payload slices alias buf and are only valid during the call.
func WalkBatch(buf []byte, fn func(class Class, payload []byte)) error {
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return fmt.Errorf("transport: bad batch count")
	}
	buf = buf[sz:]
	if count > uint64(len(buf)) {
		// Each message needs at least two bytes (class + length); reject
		// absurd counts before iterating.
		return fmt.Errorf("transport: batch count %d exceeds envelope", count)
	}
	for i := uint64(0); i < count; i++ {
		if len(buf) < 2 {
			return fmt.Errorf("transport: truncated batch item %d", i)
		}
		class := Class(buf[0])
		n, sz := binary.Uvarint(buf[1:])
		if sz <= 0 || n > uint64(len(buf)-1-sz) {
			return fmt.Errorf("transport: truncated batch item %d", i)
		}
		body := buf[1+sz : 1+sz+int(n)]
		buf = buf[1+sz+int(n):]
		fn(class, body)
	}
	if len(buf) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after batch", len(buf))
	}
	return nil
}

// DecodeBatch decodes a batch envelope into a fresh item slice (payloads
// alias buf). Tests and fuzzers use it; the delivery paths use WalkBatch.
func DecodeBatch(buf []byte) ([]BatchItem, error) {
	var items []BatchItem
	err := WalkBatch(buf, func(class Class, payload []byte) {
		items = append(items, BatchItem{Class: class, Payload: payload})
	})
	if err != nil {
		return nil, err
	}
	return items, nil
}

// FlusherConfig parameterizes a Flusher.
type FlusherConfig struct {
	// Window is how long a non-urgent message may linger in a lane waiting
	// for co-destination companions before it is flushed. Urgent traffic
	// (call requests, future updates, explicit Flush) never waits: it is
	// written immediately, coalescing only with whatever is already
	// pending. Window must be > 0; a Flusher is only built when batching
	// is enabled.
	Window time.Duration
	// MaxBytes caps the payload bytes of one flushed frame: a lane holding
	// more flushes immediately and splits the backlog across frames.
	// Defaults to 64 KiB.
	MaxBytes int
	// Clock drives the linger window, so batching stays deterministic
	// under scaled or manual clocks like every other protocol timer.
	// Defaults to the real clock.
	Clock vclock.Clock
}

// Flusher is the per-(source, destination) smart-batching engine in front
// of an Endpoint. Each destination gets a lane; messages append to the
// lane and a single drainer goroutine per active lane writes them out,
// batching whatever accumulated while the previous write was in flight
// ("smart batching": latency is added only to traffic that asked for it
// via the linger window, never to urgent messages). FIFO per pair is
// preserved because a lane has exactly one drainer and Flush/Call drain
// the lane before bypassing it.
//
// Send through a Flusher is asynchronous: transport errors surface to the
// runtime the same way a lost message does (future timeout, TTA slack),
// which is exactly the §4.1/§4.2 failure model.
type Flusher struct {
	ep  Endpoint
	bs  BatchSender // non-nil when ep supports batch frames
	cfg FlusherConfig

	mu     sync.Mutex
	lanes  map[ids.NodeID]*lane
	closed bool
}

// lane is the pending traffic of one destination.
type lane struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []BatchItem
	bytes   int
	rush    bool  // flush without lingering
	active  bool  // a drainer goroutine owns the lane
	enq     int64 // total messages ever enqueued
	flushed int64 // total messages ever written out
	err     error
}

// NewFlusher wraps ep in a batching flusher. cfg.Window must be positive.
func NewFlusher(ep Endpoint, cfg FlusherConfig) *Flusher {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 10
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	bs, _ := ep.(BatchSender)
	return &Flusher{ep: ep, bs: bs, cfg: cfg, lanes: make(map[ids.NodeID]*lane)}
}

func (f *Flusher) laneFor(dst ids.NodeID) (*lane, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	l, ok := f.lanes[dst]
	if !ok {
		l = &lane{}
		l.cond = sync.NewCond(&l.mu)
		f.lanes[dst] = l
	}
	return l, nil
}

// Send queues one message for dst. Urgent messages flush as soon as the
// lane's writer is free — when the lane is idle the sender writes
// inline, paying exactly the unbatched cost; when a write is already in
// flight the message rides the next frame. Non-urgent messages may
// linger up to the configured window waiting for companions. The error
// reports only enqueue failures (flusher closed); write errors are
// absorbed like a lost message, per the transport's one-way delivery
// contract.
func (f *Flusher) Send(dst ids.NodeID, class Class, payload []byte, urgent bool) error {
	l, err := f.laneFor(dst)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.pending = append(l.pending, BatchItem{Class: class, Payload: payload})
	l.bytes += len(payload)
	l.enq++
	if urgent {
		l.rush = true
	}
	f.dispatch(l, dst, urgent)
	return nil
}

// SendBatch queues a pre-assembled group of messages for dst (the group
// fan-out path) and flushes them without lingering.
func (f *Flusher) SendBatch(dst ids.NodeID, items []BatchItem) error {
	l, err := f.laneFor(dst)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.pending = append(l.pending, items...)
	for _, it := range items {
		l.bytes += len(it.Payload)
	}
	l.enq += int64(len(items))
	l.rush = true
	f.dispatch(l, dst, true)
	return nil
}

// dispatch gets the lane's new traffic written. Called with l.mu held;
// releases it. An idle lane with urgent traffic is drained inline by the
// calling goroutine (a bounded number of passes — the common case writes
// the caller's own message synchronously, like the unbatched path, with
// zero handoff latency); otherwise a drainer goroutine takes over or is
// already running.
func (f *Flusher) dispatch(l *lane, dst ids.NodeID, urgent bool) {
	if l.active {
		// A drainer (inline or goroutine) owns the lane: it will pick the
		// new messages up on its next pass.
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	l.active = true
	if !urgent {
		go f.drain(l, dst)
		l.mu.Unlock()
		return
	}
	if !f.drainPasses(l, dst, 2) {
		// Still traffic after the bounded inline passes (a burst is
		// landing): hand the lane to a goroutine and let the caller go.
		go f.drain(l, dst)
	}
	l.mu.Unlock()
}

// Call drains dst's lane (preserving FIFO: queued messages cannot be
// overtaken by the exchange) and then performs the request/response
// exchange on the underlying endpoint.
func (f *Flusher) Call(dst ids.NodeID, class Class, payload []byte) ([]byte, error) {
	f.mu.Lock()
	l := f.lanes[dst]
	f.mu.Unlock()
	if l != nil {
		l.mu.Lock()
		// Wait only for the messages enqueued before this call: later
		// arrivals have no ordering claim on the exchange, so sustained
		// send load cannot starve a DGC beat.
		target := l.enq
		for l.flushed < target {
			l.rush = true
			l.cond.Broadcast()
			l.cond.Wait()
		}
		l.mu.Unlock()
	}
	return f.ep.Call(dst, class, payload)
}

// Flush forces dst's pending messages out without waiting for the window
// (asynchronously: it does not wait for the write to complete).
func (f *Flusher) Flush(dst ids.NodeID) {
	f.mu.Lock()
	l := f.lanes[dst]
	f.mu.Unlock()
	if l == nil {
		return
	}
	l.mu.Lock()
	if len(l.pending) > 0 {
		l.rush = true
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// closeGrace bounds how long Close waits for in-flight lane writes. The
// bound is wall time on purpose: it guards against an endpoint write
// blocked on a hung peer (e.g. a full TCP socket buffer with no write
// deadline), which is an OS-level condition no virtual clock governs.
// After the grace the lane is abandoned — the caller is expected to
// close the transport next, which fails the stuck write and lets the
// drainer exit on its own.
const closeGrace = 2 * time.Second

// Close flushes every lane, waits (bounded by closeGrace) for the writes
// to land, and rejects subsequent sends. It does not close the
// underlying endpoint, and it must not be able to hang when the
// endpoint can: a lane whose write is wedged on a dead peer is abandoned
// to the transport's own Close.
func (f *Flusher) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	lanes := make([]*lane, 0, len(f.lanes))
	for _, l := range f.lanes {
		lanes = append(lanes, l)
	}
	f.mu.Unlock()
	var expired atomic.Bool
	t := time.AfterFunc(closeGrace, func() {
		expired.Store(true)
		for _, l := range lanes {
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		}
	})
	defer t.Stop()
	for _, l := range lanes {
		l.mu.Lock()
		l.rush = true
		l.cond.Broadcast()
		for (l.active || len(l.pending) > 0) && !expired.Load() {
			l.cond.Wait()
		}
		l.mu.Unlock()
	}
}

// drain is the goroutine form of the lane writer: it writes pending
// messages until the lane stays empty, lingering up to the window before
// non-rushed flushes.
func (f *Flusher) drain(l *lane, dst ids.NodeID) {
	l.mu.Lock()
	f.drainPasses(l, dst, 0)
	l.mu.Unlock()
}

// drainPasses writes the lane's pending traffic for at most maxPasses
// write cycles (0 = until the lane stays empty). It reports whether the
// lane was left idle (active cleared). Called — and returns — with l.mu
// held; the lock is released around writes.
func (f *Flusher) drainPasses(l *lane, dst ids.NodeID, maxPasses int) bool {
	for pass := 0; ; pass++ {
		if len(l.pending) == 0 {
			l.rush = false
			l.active = false
			l.cond.Broadcast()
			return true
		}
		if maxPasses > 0 && pass >= maxPasses {
			return false
		}
		if !l.rush && l.bytes < f.cfg.MaxBytes {
			// Linger: give co-destination companions up to the window to
			// arrive before the frame goes out. The window runs on the
			// configured clock so simulated-time runs stay deterministic.
			fired := false
			cancel := make(chan struct{})
			go func() {
				select {
				case <-f.cfg.Clock.After(f.cfg.Window):
					l.mu.Lock()
					fired = true
					l.cond.Broadcast()
					l.mu.Unlock()
				case <-cancel:
				}
			}()
			for !fired && !l.rush && l.bytes < f.cfg.MaxBytes {
				l.cond.Wait()
			}
			close(cancel)
		}
		items := takeUpTo(l, f.cfg.MaxBytes)
		l.mu.Unlock()
		err := f.write(dst, items)
		l.mu.Lock()
		l.flushed += int64(len(items))
		if err != nil && l.err == nil {
			l.err = err
		}
		l.cond.Broadcast()
	}
}

// takeUpTo removes up to maxBytes of pending payload from the lane
// (always at least one item). Caller holds l.mu.
func takeUpTo(l *lane, maxBytes int) []BatchItem {
	var bytes, i int
	for i < len(l.pending) {
		sz := len(l.pending[i].Payload)
		if i > 0 && bytes+sz > maxBytes {
			break
		}
		bytes += sz
		i++
	}
	items := l.pending[:i:i]
	l.pending = l.pending[i:]
	if len(l.pending) == 0 {
		l.pending = nil // let the flushed backing array go
	}
	l.bytes -= bytes
	return items
}

// write ships one formed batch: a single message goes out as a plain
// frame (byte-identical to the unbatched path), several as one batch
// frame when the endpoint supports it.
func (f *Flusher) write(dst ids.NodeID, items []BatchItem) error {
	if len(items) == 1 {
		return f.ep.Send(dst, items[0].Class, items[0].Payload)
	}
	if f.bs != nil {
		return f.bs.SendBatch(dst, items)
	}
	for _, it := range items {
		if err := f.ep.Send(dst, it.Class, it.Payload); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the first write error any lane of the flusher absorbed
// (diagnostic; the runtime's failure handling does not depend on it).
func (f *Flusher) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, l := range f.lanes {
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
