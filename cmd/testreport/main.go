// Command testreport turns a `go test -json` stream (stdin) into a
// per-package timing and coverage summary. CI runs the full suite once
// with -json -cover, pipes it through this tool, and uploads the result
// as the build's test-report artifact — so "which package got slow" and
// "what does coverage look like" are answerable from the artifact tab
// without rerunning anything.
//
//	go test -json -cover -shuffle=on ./... | go run ./cmd/testreport -out test-report.txt
//
// The tool is itself part of the gate: it exits nonzero when any
// package failed, so piping through it (under pipefail) never masks a
// red suite.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"
)

// event is the test2json record shape (go doc test2json). Fields we
// don't consume are left out; unknown fields are ignored by the decoder.
type event struct {
	Action  string // run, output, pass, fail, skip, ...
	Package string
	Test    string
	Elapsed float64 // seconds, on pass/fail events
	Output  string
}

type pkgSummary struct {
	name     string
	elapsed  float64
	coverage float64 // percent; <0 when the package reported none
	passed   int
	failed   int
	skipped  int
	status   string
}

type slowTest struct {
	pkg, name string
	elapsed   float64
}

var coverageRe = regexp.MustCompile(`coverage: (\d+(?:\.\d+)?)% of statements`)

func main() {
	out := flag.String("out", "", "also write the report to this file")
	topN := flag.Int("top", 15, "number of slowest tests to list")
	flag.Parse()

	pkgs, slow, err := collect(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "testreport: %v\n", err)
		os.Exit(2)
	}

	report := render(pkgs, slow, *topN)
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "testreport: %v\n", err)
			os.Exit(2)
		}
	}
	for _, p := range pkgs {
		if p.status == "fail" {
			os.Exit(1)
		}
	}
}

// collect folds the event stream into per-package summaries plus the
// individually slowest tests. Non-JSON lines (toolchain noise, build
// errors) are passed through to stderr rather than aborting the report.
func collect(r io.Reader) (map[string]*pkgSummary, []slowTest, error) {
	pkgs := make(map[string]*pkgSummary)
	var slow []slowTest
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			fmt.Fprintf(os.Stderr, "%s\n", line)
			continue
		}
		if ev.Package == "" {
			continue
		}
		p := pkgs[ev.Package]
		if p == nil {
			p = &pkgSummary{name: ev.Package, coverage: -1}
			pkgs[ev.Package] = p
		}
		switch ev.Action {
		case "output":
			if m := coverageRe.FindStringSubmatch(ev.Output); m != nil {
				fmt.Sscanf(m[1], "%f", &p.coverage)
			}
		case "pass", "fail", "skip":
			if ev.Test == "" {
				p.elapsed = ev.Elapsed
				p.status = ev.Action
				break
			}
			// Count top-level tests only: subtests are part of their
			// parent's timing and would double-count.
			if !strings.Contains(ev.Test, "/") {
				switch ev.Action {
				case "pass":
					p.passed++
				case "fail":
					p.failed++
				case "skip":
					p.skipped++
				}
				slow = append(slow, slowTest{ev.Package, ev.Test, ev.Elapsed})
			}
		}
	}
	return pkgs, slow, sc.Err()
}

func render(pkgs map[string]*pkgSummary, slow []slowTest, topN int) string {
	ordered := make([]*pkgSummary, 0, len(pkgs))
	for _, p := range pkgs {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].elapsed > ordered[j].elapsed })

	var b strings.Builder
	b.WriteString("Per-package test timings and coverage\n")
	b.WriteString("=====================================\n\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "PACKAGE\tSTATUS\tTIME\tTESTS\tCOVERAGE\n")
	var total float64
	for _, p := range ordered {
		cov := "-"
		if p.coverage >= 0 {
			cov = fmt.Sprintf("%.1f%%", p.coverage)
		}
		counts := fmt.Sprintf("%d", p.passed)
		if p.failed > 0 {
			counts += fmt.Sprintf(" (+%d FAILED)", p.failed)
		}
		if p.skipped > 0 {
			counts += fmt.Sprintf(" (+%d skipped)", p.skipped)
		}
		status := p.status
		if status == "" {
			status = "?"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2fs\t%s\t%s\n", p.name, status, p.elapsed, counts, cov)
		total += p.elapsed
	}
	tw.Flush()
	fmt.Fprintf(&b, "\nTotal package time (sum, parallel in practice): %.2fs\n", total)

	sort.Slice(slow, func(i, j int) bool { return slow[i].elapsed > slow[j].elapsed })
	if topN > len(slow) {
		topN = len(slow)
	}
	if topN > 0 {
		fmt.Fprintf(&b, "\nSlowest %d tests\n---------------\n", topN)
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		for _, s := range slow[:topN] {
			fmt.Fprintf(tw, "%.2fs\t%s\t%s\n", s.elapsed, shortPkg(s.pkg), s.name)
		}
		tw.Flush()
	}
	return b.String()
}

// shortPkg trims the module prefix for readability: repro/internal/active
// reads better as internal/active in a fixed-width table.
func shortPkg(pkg string) string {
	return strings.TrimPrefix(pkg, "repro/")
}
