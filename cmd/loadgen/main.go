// Command loadgen drives the active-object runtime with configurable
// workload mixes and emits machine-readable messaging measurements.
//
// One-off run (closed loop, mixed workload, batching on, over TCP):
//
//	go run ./cmd/loadgen -backend tcp -duration 3s -mix 6:2:1 -batch 200us
//
// Open-loop latency probe at a fixed arrival rate:
//
//	go run ./cmd/loadgen -rate 5000 -duration 5s
//
// Soak with connection chaos:
//
//	go run ./cmd/loadgen -backend tcp -duration 30s -mix 4:1:2 -drop-every 2s
//
// Elastic-cluster churn with node-kill chaos (nodes join, serve, and die
// mid-run while the steady workload must ride through):
//
//	go run ./cmd/loadgen -duration 5s -mix 4:0:2 -kill-every 500ms
//
// The standard suite regenerates the repository's messaging trajectory
// (make bench):
//
//	go run ./cmd/loadgen -suite -duration 2s -out BENCH_messaging.json
//
// The suite runs the same closed-loop mixed workload over every
// (backend, batching) combination, so the JSON records exactly what the
// batching path buys on each substrate.
//
// Compare mode is the CI perf gate: measure a fresh suite, then fail if
// p50 call latency or calls/sec regressed beyond the threshold against
// the checked-in trajectory:
//
//	go run ./cmd/loadgen -suite -duration 2s -out /tmp/bench.json
//	go run ./cmd/loadgen -compare -candidate /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		backend   = flag.String("backend", "sim", `substrate: "sim" or "tcp"`)
		nodes     = flag.Int("nodes", 4, "worker nodes")
		actors    = flag.Int("actors", 4, "echo activities per node")
		group     = flag.Int("group", 0, "broadcast fan-out width (0 = auto)")
		workers   = flag.Int("workers", 0, "closed-loop concurrency (0 = 2×GOMAXPROCS)")
		rate      = flag.Float64("rate", 0, "open-loop arrivals/sec (0 = closed loop)")
		duration  = flag.Duration("duration", 2*time.Second, "measured run length")
		mix       = flag.String("mix", "1:0:0:0", "call:broadcast:churn[:pipeline] weights")
		payload   = flag.Int("payload", 64, "payload bytes per request")
		batch     = flag.Duration("batch", 0, "batch window (0 = batching off)")
		dgcOff    = flag.Bool("no-dgc", false, "disable the DGC")
		dropEvery = flag.Duration("drop-every", 0, "chaos: drop all TCP connections at this period")
		killEvery = flag.Duration("kill-every", 0, "chaos: run a join-serve-die node lifecycle at this period (implies -cluster)")
		clusterOn = flag.Bool("cluster", false, "enable the elastic cluster runtime")
		seed      = flag.Int64("seed", 1, "workload seed")
		out       = flag.String("out", "", "write JSON here instead of stdout")
		suite     = flag.Bool("suite", false, "run the standard benchmark suite (ignores -backend/-batch)")

		compare    = flag.Bool("compare", false, "perf gate: compare -candidate against -baseline instead of running a workload")
		baseline   = flag.String("baseline", "BENCH_messaging.json", "compare: the checked-in suite JSON")
		candidate  = flag.String("candidate", "", "compare: the freshly measured suite JSON")
		maxRegress = flag.Float64("max-regress", 25, "compare: allowed regression in percent (p50 call latency up, calls/sec down)")
	)
	flag.Parse()

	if *compare {
		if *candidate == "" {
			fmt.Fprintln(os.Stderr, "loadgen: -compare needs -candidate")
			os.Exit(2)
		}
		if err := compareSuites(*baseline, *candidate, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	m, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base := loadgen.Config{
		Backend:        *backend,
		Nodes:          *nodes,
		ActorsPerNode:  *actors,
		GroupSize:      *group,
		Workers:        *workers,
		RatePerSec:     *rate,
		Duration:       *duration,
		Mix:            m,
		PayloadBytes:   *payload,
		BatchWindow:    *batch,
		DisableDGC:     *dgcOff,
		DropConnsEvery: *dropEvery,
		Cluster:        *clusterOn,
		NodeKillEvery:  *killEvery,
		Seed:           *seed,
	}

	var doc any
	if *suite {
		doc, err = runSuite(base)
	} else {
		var res loadgen.Result
		res, err = loadgen.Run(base)
		doc = res
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d scenarios)\n", *out, suiteLen(doc))
}

// suiteDoc is the schema of BENCH_messaging.json.
type suiteDoc struct {
	// Meta describes the run environment (for reading trajectories across
	// machines with the right grain of salt).
	Meta struct {
		GoVersion string `json:"go_version"`
		NumCPU    int    `json:"num_cpu"`
		Note      string `json:"note"`
	} `json:"meta"`
	// Scenarios holds one result per (backend, batching) combination.
	Scenarios []loadgen.Result `json:"scenarios"`
}

func suiteLen(doc any) int {
	if d, ok := doc.(suiteDoc); ok {
		return len(d.Scenarios)
	}
	return 1
}

// runSuite executes the standard matrix: the same mixed closed-loop
// workload over {sim, tcp} × {unbatched, batched}.
func runSuite(base loadgen.Config) (suiteDoc, error) {
	var doc suiteDoc
	doc.Meta.GoVersion = runtime.Version()
	doc.Meta.NumCPU = runtime.NumCPU()
	doc.Meta.Note = "closed-loop mixed workload (call:broadcast:churn:pipeline = 6:2:1:2; pipeline = 4-stage forwarded-future chain), regenerate with: make bench"

	for _, backend := range []string{"sim", "tcp"} {
		for _, window := range []time.Duration{0, 200 * time.Microsecond} {
			cfg := base
			cfg.Backend = backend
			cfg.BatchWindow = window
			cfg.Mix = loadgen.Mix{Call: 6, Broadcast: 2, Churn: 1, Pipeline: 2}
			res, err := loadgen.Run(cfg)
			if err != nil {
				return doc, fmt.Errorf("suite %s window=%v: %w", backend, window, err)
			}
			doc.Scenarios = append(doc.Scenarios, res)
		}
	}
	return doc, nil
}

func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return loadgen.Mix{}, fmt.Errorf("loadgen: -mix wants call:broadcast:churn[:pipeline], got %q", s)
	}
	var vals [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &vals[i]); err != nil {
			return loadgen.Mix{}, fmt.Errorf("loadgen: bad mix component %q", p)
		}
	}
	return loadgen.Mix{Call: vals[0], Broadcast: vals[1], Churn: vals[2], Pipeline: vals[3]}, nil
}
