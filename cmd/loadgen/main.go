// Command loadgen drives the active-object runtime with configurable
// workload mixes and emits machine-readable messaging measurements.
//
// One-off run (closed loop, mixed workload, batching on, over TCP):
//
//	go run ./cmd/loadgen -backend tcp -duration 3s -mix 6:2:1 -batch 200us
//
// Open-loop latency probe at a fixed arrival rate:
//
//	go run ./cmd/loadgen -rate 5000 -duration 5s
//
// Soak with connection chaos:
//
//	go run ./cmd/loadgen -backend tcp -duration 30s -mix 4:1:2 -drop-every 2s
//
// Elastic-cluster churn with node-kill chaos (nodes join, serve, and die
// mid-run while the steady workload must ride through):
//
//	go run ./cmd/loadgen -duration 5s -mix 4:0:2 -kill-every 500ms
//
// The standard suite regenerates the repository's messaging trajectory
// (make bench):
//
//	go run ./cmd/loadgen -suite -duration 2s -out BENCH_messaging.json
//
// The suite runs the same closed-loop mixed workload over every
// (backend, batching) combination, so the JSON records exactly what the
// batching path buys on each substrate.
//
// Compare mode is the CI perf gate: measure a fresh suite, then fail if
// p50 call latency or calls/sec regressed beyond the threshold against
// the checked-in trajectory:
//
//	go run ./cmd/loadgen -suite -duration 2s -out /tmp/bench.json
//	go run ./cmd/loadgen -compare -candidate /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		backend      = flag.String("backend", "sim", `substrate: "sim" or "tcp"`)
		nodes        = flag.Int("nodes", 4, "worker nodes")
		actors       = flag.Int("actors", 4, "echo activities per node")
		group        = flag.Int("group", 0, "broadcast fan-out width (0 = auto)")
		workers      = flag.Int("workers", 0, "closed-loop concurrency (0 = 2×GOMAXPROCS)")
		rate         = flag.Float64("rate", 0, "open-loop arrivals/sec (0 = closed loop)")
		duration     = flag.Duration("duration", 2*time.Second, "measured run length")
		mix          = flag.String("mix", "1:0:0:0", "call:broadcast:churn[:pipeline[:migrate[:send]]] weights")
		colocate     = flag.Bool("colocate", false, "anchor the send lane on the actor-owning nodes (intra-node direct path)")
		payload      = flag.Int("payload", 64, "payload bytes per request")
		batch        = flag.Duration("batch", 0, "batch window (0 = batching off)")
		dgcOff       = flag.Bool("no-dgc", false, "disable the DGC")
		flatGroup    = flag.Bool("flat-group", false, "force flat (non-tree) group fan-out")
		netCost      = flag.Duration("net-cost", 0, "sim backend: per-message interface overhead (simnet PerMessage)")
		dropEvery    = flag.Duration("drop-every", 0, "chaos: drop all TCP connections at this period")
		killEvery    = flag.Duration("kill-every", 0, "chaos: run a join-serve-die node lifecycle at this period (implies -cluster)")
		restartEvery = flag.Duration("restart-every", 0, "chaos: crash and recover the durable node at this period (sim backend)")
		clusterOn    = flag.Bool("cluster", false, "enable the elastic cluster runtime")
		seed         = flag.Int64("seed", 1, "workload seed")
		out          = flag.String("out", "", "write JSON here instead of stdout")
		suite        = flag.Bool("suite", false, "run the standard benchmark suite (ignores -backend/-batch)")

		compare    = flag.Bool("compare", false, "perf gate: compare -candidate against -baseline instead of running a workload")
		baseline   = flag.String("baseline", "BENCH_messaging.json", "compare: the checked-in suite JSON")
		candidate  = flag.String("candidate", "", "compare: the freshly measured suite JSON")
		maxRegress = flag.Float64("max-regress", 25, "compare: allowed regression in percent (p50 call latency up, calls/sec down)")
	)
	flag.Parse()

	if *compare {
		if *candidate == "" {
			fmt.Fprintln(os.Stderr, "loadgen: -compare needs -candidate")
			os.Exit(2)
		}
		if err := compareSuites(*baseline, *candidate, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	m, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base := loadgen.Config{
		Backend:           *backend,
		Nodes:             *nodes,
		ActorsPerNode:     *actors,
		GroupSize:         *group,
		Workers:           *workers,
		RatePerSec:        *rate,
		Duration:          *duration,
		Mix:               m,
		PayloadBytes:      *payload,
		BatchWindow:       *batch,
		DisableDGC:        *dgcOff,
		Colocate:          *colocate,
		DisableTreeFanOut: *flatGroup,
		NetPerMessage:     *netCost,
		DropConnsEvery:    *dropEvery,
		Cluster:           *clusterOn,
		NodeKillEvery:     *killEvery,
		RestartEvery:      *restartEvery,
		Seed:              *seed,
	}

	var doc any
	if *suite {
		doc, err = runSuite(base)
	} else {
		var res loadgen.Result
		res, err = loadgen.Run(base)
		doc = res
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d scenarios)\n", *out, suiteLen(doc))
}

// suiteDoc is the schema of BENCH_messaging.json.
type suiteDoc struct {
	// Meta describes the run environment (for reading trajectories across
	// machines with the right grain of salt).
	Meta struct {
		GoVersion string `json:"go_version"`
		NumCPU    int    `json:"num_cpu"`
		Note      string `json:"note"`
	} `json:"meta"`
	// Scenarios holds one result per (backend, batching) combination.
	Scenarios []loadgen.Result `json:"scenarios"`
}

func suiteLen(doc any) int {
	if d, ok := doc.(suiteDoc); ok {
		return len(d.Scenarios)
	}
	return 1
}

// runSuite executes the standard matrix — the same mixed closed-loop
// workload over {sim, tcp} × {unbatched, batched} — plus the scale
// scenarios: tree vs flat group broadcast at 1024 members, and the
// 10^5-activity churn + migration + node-kill run the location directory
// is proven by.
func runSuite(base loadgen.Config) (suiteDoc, error) {
	var doc suiteDoc
	doc.Meta.GoVersion = runtime.Version()
	doc.Meta.NumCPU = runtime.NumCPU()
	doc.Meta.Note = "closed-loop mixed workload (call:broadcast:churn:pipeline = 6:2:1:2; pipeline = 4-stage forwarded-future chain) plus bcast1024 tree/flat, sends-1m-local, scale-churn and churn-restart scenarios, regenerate with: make bench"

	for _, backend := range []string{"sim", "tcp"} {
		for _, window := range []time.Duration{0, 200 * time.Microsecond} {
			cfg := base
			cfg.Backend = backend
			cfg.BatchWindow = window
			cfg.Mix = loadgen.Mix{Call: 6, Broadcast: 2, Churn: 1, Pipeline: 2}
			res, err := loadgen.Run(cfg)
			if err != nil {
				return doc, fmt.Errorf("suite %s window=%v: %w", backend, window, err)
			}
			doc.Scenarios = append(doc.Scenarios, res)
		}
	}

	// Tree vs flat broadcast, 1024 members over 16 nodes: the paired
	// arms behind the comparator's ≥2× tree-speedup gate.
	for _, flat := range []bool{false, true} {
		cfg := base
		cfg.Name = "bcast1024-tree"
		if flat {
			cfg.Name = "bcast1024-flat"
		}
		cfg.Backend = "sim"
		cfg.Nodes = 16
		cfg.ActorsPerNode = 64
		cfg.GroupSize = 1024
		cfg.Workers = 1
		cfg.Mix = loadgen.Mix{Broadcast: 1}
		cfg.DisableTreeFanOut = flat
		// Both arms run over interfaces with realistic per-packet
		// overhead (simnet PerMessage; the paper's own evaluation rode
		// RMI through a SOCKS proxy, well above this): the packet-rate
		// bottleneck at the root is precisely what the tree topology
		// relieves, and what a zero-cost in-memory network would hide.
		// One worker so the arms measure a single broadcast's latency,
		// not self-contention at the shared root.
		cfg.NetPerMessage = 100 * time.Microsecond
		res, err := loadgen.Run(cfg)
		if err != nil {
			return doc, fmt.Errorf("suite %s: %w", cfg.Name, err)
		}
		doc.Scenarios = append(doc.Scenarios, res)
	}

	// The asynchronous-messaging floor: a send-only lane of colocated
	// one-way pings with a sync barrier every 256th op, gated by the
	// comparator on sustaining ≥10^6 served ops/s aggregate. Colocated
	// because this scenario measures the runtime's own hot path — typed
	// marshal, queue push, affinity serve — not the substrate hop (the
	// matrix scenarios above cover that); the windowed barrier makes the
	// figure honest by proving the serve side drained each window.
	{
		cfg := base
		cfg.Name = "sends-1m-local"
		cfg.Backend = "sim"
		cfg.Nodes = 2
		cfg.ActorsPerNode = 2
		cfg.Workers = 4
		cfg.Mix = loadgen.Mix{Send: 1}
		cfg.Colocate = true
		cfg.DisableDGC = true
		res, err := loadgen.Run(cfg)
		if err != nil {
			return doc, fmt.Errorf("suite %s: %w", cfg.Name, err)
		}
		doc.Scenarios = append(doc.Scenarios, res)
	}

	// The 10^5-activity scale proof: 8 worker nodes in an elastic
	// cluster, burst churn + live migration + a node hard-killed every
	// 300ms, running until at least 100k activities existed. The
	// comparator gates it on zero lost replies and the activity floor.
	{
		cfg := base
		cfg.Name = "scale-churn-100k"
		cfg.Backend = "sim"
		cfg.Nodes = 8
		cfg.ActorsPerNode = 16
		cfg.Mix = loadgen.Mix{Call: 2, Broadcast: 1, Churn: 6, Migrate: 1}
		cfg.ChurnBurst = 32
		cfg.MinActivities = 100_000
		cfg.NodeKillEvery = 300 * time.Millisecond
		res, err := loadgen.Run(cfg)
		if err != nil {
			return doc, fmt.Errorf("suite %s: %w", cfg.Name, err)
		}
		doc.Scenarios = append(doc.Scenarios, res)
	}

	// Durability under crash-restart chaos: a durable node of registered,
	// checkpointed actors is hard-killed and recovered every 300ms while
	// the steady workload rides through. The comparator gates it on every
	// restart cycle preserving every registered identity.
	{
		cfg := base
		cfg.Name = "churn-restart"
		cfg.Backend = "sim"
		cfg.Nodes = 4
		cfg.ActorsPerNode = 4
		cfg.Mix = loadgen.Mix{Call: 4, Churn: 2}
		cfg.RestartEvery = 300 * time.Millisecond
		res, err := loadgen.Run(cfg)
		if err != nil {
			return doc, fmt.Errorf("suite %s: %w", cfg.Name, err)
		}
		doc.Scenarios = append(doc.Scenarios, res)
	}
	return doc, nil
}

func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 6 {
		return loadgen.Mix{}, fmt.Errorf("loadgen: -mix wants call:broadcast:churn[:pipeline[:migrate[:send]]], got %q", s)
	}
	var vals [6]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &vals[i]); err != nil {
			return loadgen.Mix{}, fmt.Errorf("loadgen: bad mix component %q", p)
		}
	}
	return loadgen.Mix{Call: vals[0], Broadcast: vals[1], Churn: vals[2], Pipeline: vals[3], Migrate: vals[4], Send: vals[5]}, nil
}
