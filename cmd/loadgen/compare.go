package main

// The perf-regression comparator behind `loadgen -compare`: CI runs the
// standard suite into a fresh JSON and fails the build when the hot-path
// call metrics regress beyond a threshold against the checked-in
// trajectory (BENCH_messaging.json). Two metrics gate the build, per
// scenario: p50 call latency (must not grow) and calls/sec (must not
// shrink). Throughput-style comparisons on shared CI runners are noisy,
// hence the generous default threshold — the gate exists to catch
// step-function regressions (an accidental O(n) walk on the call path, a
// lost fast path), not single-digit drift.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/loadgen"
)

// latencySlackMicros is an absolute floor under the percentage gate: a
// p50 regression must exceed the threshold AND grow by more than this
// many microseconds to fail the build. Sub-100µs p50s on a shared
// single-CPU runner move tens of microseconds between runs from
// scheduler jitter alone; a percentage gate by itself would flag that
// noise, while a real step-function regression clears both bars.
const latencySlackMicros = 100

// compareSuites loads two suite documents and checks every baseline
// scenario against its candidate counterpart (matched by backend and
// batch window). It returns an error describing the first set of
// violations when any gated metric regresses by more than maxRegressPct.
func compareSuites(baselinePath, candidatePath string, maxRegressPct float64) error {
	base, err := loadSuite(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cand, err := loadSuite(candidatePath)
	if err != nil {
		return fmt.Errorf("candidate %s: %w", candidatePath, err)
	}
	if len(base.Scenarios) == 0 {
		return fmt.Errorf("baseline %s: no scenarios", baselinePath)
	}
	var violations []string
	matched := 0
	for _, b := range base.Scenarios {
		c, ok := findScenario(cand.Scenarios, b)
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: no candidate scenario", scenarioName(b)))
			continue
		}
		matched++
		name := scenarioName(b)
		if b.Config.Mix.Send > 0 {
			// Send scenarios are gated on an absolute throughput floor:
			// the one-way lane must sustain ≥10^6 served ops/s aggregate
			// (every windowed barrier proves its window was drained), with
			// no lost barrier replies. An absolute floor, not a relative
			// gate: the number is the scenario's reason to exist.
			violations = append(violations, checkSendFloor(name, c)...)
			fmt.Printf("%-24s send throughput %11.0f ops/s (floor %.0f)\n",
				name, c.Throughput, sendFloorOpsPerSec)
			continue
		}
		if b.Restarts > 0 {
			// Crash-restart scenarios are gated on durability correctness,
			// not latency: cycles must actually run and every registered
			// identity must survive every one of them.
			violations = append(violations, checkRestart(name, c)...)
			fmt.Printf("%-24s restarts %4d      lost identities %d\n",
				name, c.Restarts, c.LostIdentities)
			continue
		}
		if b.Config.MinActivities > 0 {
			// Scale scenarios run under node-kill chaos, so their latency
			// is gated elsewhere; what they must prove is correctness at
			// scale — the activity floor reached with zero lost replies.
			violations = append(violations, checkScale(name, b, c)...)
			fmt.Printf("%-24s activities %8d   lost replies %d\n",
				name, c.ActivitiesCreated, c.LostReplies)
			continue
		}
		baseP50 := b.Calls.Latency.P50Micros
		candP50 := c.Calls.Latency.P50Micros
		if baseP50 > 0 && candP50 > baseP50*(1+maxRegressPct/100) &&
			candP50-baseP50 > latencySlackMicros {
			violations = append(violations, fmt.Sprintf(
				"%s: p50 call latency %.0fµs → %.0fµs (+%.0f%%, limit +%.0f%%)",
				name, baseP50, candP50, 100*(candP50/baseP50-1), maxRegressPct))
		}
		baseCPS := callsPerSec(b)
		candCPS := callsPerSec(c)
		if baseCPS > 0 && candCPS < baseCPS*(1-maxRegressPct/100) {
			violations = append(violations, fmt.Sprintf(
				"%s: calls/sec %.0f → %.0f (-%.0f%%, limit -%.0f%%)",
				name, baseCPS, candCPS, 100*(1-candCPS/baseCPS), maxRegressPct))
		}
		fmt.Printf("%-24s p50 %5.0fµs → %5.0fµs   calls/s %8.0f → %8.0f\n",
			name, baseP50, candP50, baseCPS, candCPS)
	}
	if matched == 0 {
		return fmt.Errorf("no baseline scenario matched a candidate scenario")
	}
	violations = append(violations, checkTreeSpeedup(base, cand)...)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		return fmt.Errorf("%d perf regression(s) beyond %.0f%%", len(violations), maxRegressPct)
	}
	fmt.Printf("perf gate passed: %d scenario(s) within %.0f%% of baseline\n", matched, maxRegressPct)
	return nil
}

func loadSuite(path string) (suiteDoc, error) {
	var doc suiteDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, err
	}
	return doc, nil
}

// findScenario matches named scenarios by name; unnamed ones (the
// original matrix) by substrate and batching mode.
func findScenario(scenarios []loadgen.Result, want loadgen.Result) (loadgen.Result, bool) {
	for _, s := range scenarios {
		if want.Config.Name != "" || s.Config.Name != "" {
			if s.Config.Name == want.Config.Name {
				return s, true
			}
			continue
		}
		if s.Config.Backend == want.Config.Backend && s.Batched == want.Batched {
			return s, true
		}
	}
	return loadgen.Result{}, false
}

func scenarioName(r loadgen.Result) string {
	if r.Config.Name != "" {
		return r.Config.Name
	}
	mode := "unbatched"
	if r.Batched {
		mode = "batched"
	}
	return r.Config.Backend + "/" + mode
}

// sendFloorOpsPerSec is the absolute gate on the one-way send scenario:
// a million served messages per second, aggregate, on the sim backend.
const sendFloorOpsPerSec = 1e6

// checkSendFloor gates a send scenario on its throughput floor and on
// every windowed barrier reply arriving.
func checkSendFloor(name string, c loadgen.Result) []string {
	var violations []string
	if c.Throughput < sendFloorOpsPerSec {
		violations = append(violations, fmt.Sprintf(
			"%s: %.0f ops/s, floor %.0f", name, c.Throughput, sendFloorOpsPerSec))
	}
	if c.LostReplies != 0 {
		violations = append(violations, fmt.Sprintf(
			"%s: %d lost replies, want 0", name, c.LostReplies))
	}
	return violations
}

// checkScale gates a scale scenario: the candidate must have created at
// least the configured activity floor and lost no replies doing it.
func checkScale(name string, b, c loadgen.Result) []string {
	var violations []string
	if floor := b.Config.MinActivities; c.ActivitiesCreated < floor {
		violations = append(violations, fmt.Sprintf(
			"%s: %d activities created, floor %d", name, c.ActivitiesCreated, floor))
	}
	if c.LostReplies != 0 {
		violations = append(violations, fmt.Sprintf(
			"%s: %d lost replies, want 0", name, c.LostReplies))
	}
	return violations
}

// checkRestart gates a crash-restart scenario: the chaos arm must have
// completed at least one kill-and-recover cycle, and zero registered
// durable identities may have been lost across all of them.
func checkRestart(name string, c loadgen.Result) []string {
	var violations []string
	if c.Restarts == 0 {
		violations = append(violations, fmt.Sprintf(
			"%s: no restart cycles ran", name))
	}
	if c.LostIdentities != 0 {
		violations = append(violations, fmt.Sprintf(
			"%s: %d lost registered identities, want 0", name, c.LostIdentities))
	}
	return violations
}

// checkTreeSpeedup gates tree fan-out against flat: when the baseline
// carries both bcast1024 arms, the candidate's tree arm must finish
// broadcasts at least twice as fast (p50) as its own flat arm. Both
// figures come from the same candidate run on the same machine, so the
// ratio is immune to runner speed.
func checkTreeSpeedup(base, cand suiteDoc) []string {
	const treeName, flatName = "bcast1024-tree", "bcast1024-flat"
	byName := func(doc suiteDoc, name string) (loadgen.Result, bool) {
		return findScenario(doc.Scenarios, loadgen.Result{Config: loadgen.Config{Name: name}})
	}
	if _, ok := byName(base, treeName); !ok {
		return nil
	}
	if _, ok := byName(base, flatName); !ok {
		return nil
	}
	tree, okT := byName(cand, treeName)
	flat, okF := byName(cand, flatName)
	if !okT || !okF {
		return nil // missing arms already reported as unmatched scenarios
	}
	treeP50 := tree.Broadcasts.Latency.P50Micros
	flatP50 := flat.Broadcasts.Latency.P50Micros
	fmt.Printf("%-24s p50 broadcast tree %5.0fµs vs flat %5.0fµs (%.1fx)\n",
		"bcast1024", treeP50, flatP50, flatP50/treeP50)
	if treeP50 <= 0 || flatP50 <= 0 {
		return []string{"bcast1024: missing broadcast latency measurements"}
	}
	if treeP50*2 > flatP50 {
		return []string{fmt.Sprintf(
			"bcast1024: tree p50 %.0fµs not ≥2x faster than flat p50 %.0fµs",
			treeP50, flatP50)}
	}
	return nil
}

// callsPerSec is the gated throughput figure: completed calls of the
// call-workload lane over the measured duration.
func callsPerSec(r loadgen.Result) float64 {
	if r.DurationSeconds <= 0 {
		return 0
	}
	return float64(r.Calls.Ops) / r.DurationSeconds
}
