package main

// The perf-regression comparator behind `loadgen -compare`: CI runs the
// standard suite into a fresh JSON and fails the build when the hot-path
// call metrics regress beyond a threshold against the checked-in
// trajectory (BENCH_messaging.json). Two metrics gate the build, per
// scenario: p50 call latency (must not grow) and calls/sec (must not
// shrink). Throughput-style comparisons on shared CI runners are noisy,
// hence the generous default threshold — the gate exists to catch
// step-function regressions (an accidental O(n) walk on the call path, a
// lost fast path), not single-digit drift.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/loadgen"
)

// compareSuites loads two suite documents and checks every baseline
// scenario against its candidate counterpart (matched by backend and
// batch window). It returns an error describing the first set of
// violations when any gated metric regresses by more than maxRegressPct.
func compareSuites(baselinePath, candidatePath string, maxRegressPct float64) error {
	base, err := loadSuite(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cand, err := loadSuite(candidatePath)
	if err != nil {
		return fmt.Errorf("candidate %s: %w", candidatePath, err)
	}
	if len(base.Scenarios) == 0 {
		return fmt.Errorf("baseline %s: no scenarios", baselinePath)
	}
	var violations []string
	matched := 0
	for _, b := range base.Scenarios {
		c, ok := findScenario(cand.Scenarios, b)
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: no candidate scenario", scenarioName(b)))
			continue
		}
		matched++
		name := scenarioName(b)
		baseP50 := b.Calls.Latency.P50Micros
		candP50 := c.Calls.Latency.P50Micros
		if baseP50 > 0 && candP50 > baseP50*(1+maxRegressPct/100) {
			violations = append(violations, fmt.Sprintf(
				"%s: p50 call latency %.0fµs → %.0fµs (+%.0f%%, limit +%.0f%%)",
				name, baseP50, candP50, 100*(candP50/baseP50-1), maxRegressPct))
		}
		baseCPS := callsPerSec(b)
		candCPS := callsPerSec(c)
		if baseCPS > 0 && candCPS < baseCPS*(1-maxRegressPct/100) {
			violations = append(violations, fmt.Sprintf(
				"%s: calls/sec %.0f → %.0f (-%.0f%%, limit -%.0f%%)",
				name, baseCPS, candCPS, 100*(1-candCPS/baseCPS), maxRegressPct))
		}
		fmt.Printf("%-24s p50 %5.0fµs → %5.0fµs   calls/s %8.0f → %8.0f\n",
			name, baseP50, candP50, baseCPS, candCPS)
	}
	if matched == 0 {
		return fmt.Errorf("no baseline scenario matched a candidate scenario")
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "REGRESSION:", v)
		}
		return fmt.Errorf("%d perf regression(s) beyond %.0f%%", len(violations), maxRegressPct)
	}
	fmt.Printf("perf gate passed: %d scenario(s) within %.0f%% of baseline\n", matched, maxRegressPct)
	return nil
}

func loadSuite(path string) (suiteDoc, error) {
	var doc suiteDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, err
	}
	return doc, nil
}

// findScenario matches scenarios by substrate and batching mode — the
// axes the suite enumerates.
func findScenario(scenarios []loadgen.Result, want loadgen.Result) (loadgen.Result, bool) {
	for _, s := range scenarios {
		if s.Config.Backend == want.Config.Backend && s.Batched == want.Batched {
			return s, true
		}
	}
	return loadgen.Result{}, false
}

func scenarioName(r loadgen.Result) string {
	mode := "unbatched"
	if r.Batched {
		mode = "batched"
	}
	return r.Config.Backend + "/" + mode
}

// callsPerSec is the gated throughput figure: completed calls of the
// call-workload lane over the measured duration.
func callsPerSec(r loadgen.Result) float64 {
	if r.DurationSeconds <= 0 {
		return 0
	}
	return float64(r.Calls.Ops) / r.DurationSeconds
}
