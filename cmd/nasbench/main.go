// Command nasbench regenerates the paper's Fig. 8 (bandwidth overhead)
// and Fig. 9 (time overhead and DGC time) tables: each NAS kernel runs
// once without the DGC (explicit termination) and once with it, on the
// scaled Grid'5000 topology with the paper's TTB=30s / TTA=61s on a
// compressed clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/nas"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kernels = flag.String("kernels", "cg,ep,ft", "comma-separated kernels to run")
		workers = flag.Int("workers", 32, "worker activities (paper: 256)")
		nodes   = flag.Int("nodes", 16, "grid nodes (paper: 128)")
		scale   = flag.Int64("scale", 200, "clock compression factor")
		quick   = flag.Bool("quick", false, "use tiny test-size kernels")
	)
	flag.Parse()

	var fig8, fig9 metrics.Table
	fig8.Header = []string{"Kernel", "No DGC", "DGC", "Overhead", "(paper)"}
	fig9.Header = []string{"Kernel", "No DGC time", "DGC time", "Overhead", "DGC collect time", "beats", "(paper collect)"}
	paperBW := map[nas.Kernel]string{nas.KernelCG: "15.07 %", nas.KernelEP: "929.28 %", nas.KernelFT: "14.73 %"}
	paperDGC := map[nas.Kernel]string{nas.KernelCG: "534 s", nas.KernelEP: "530 s", nas.KernelFT: "457 s"}

	for _, name := range strings.Split(*kernels, ",") {
		k := nas.Kernel(strings.TrimSpace(name))
		cfg := nas.PaperParams(k)
		if *quick {
			cfg = nas.TestParams(k)
		} else {
			cfg.Workers = *workers
			cfg.Nodes = *nodes
			cfg.ScaleFactor = *scale
		}

		fmt.Printf("running %s (np=%d, nodes=%d, TTB=%v, TTA=%v)...\n",
			k, cfg.Workers, cfg.Nodes, cfg.TTB, cfg.TTA)

		cfg.DGC = false
		base, err := nas.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s without DGC: %w", k, err)
		}
		cfg.DGC = true
		with, err := nas.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s with DGC: %w", k, err)
		}
		if !base.Verified || !with.Verified {
			return fmt.Errorf("%s verification failed (base=%v with=%v)", k, base.Verified, with.Verified)
		}

		fig8.AddRow(strings.ToUpper(string(k)),
			metrics.Bytes(base.TotalBytes()),
			metrics.Bytes(with.TotalBytes()),
			metrics.Percent(float64(with.TotalBytes()), float64(base.TotalBytes())),
			paperBW[k])
		beats := float64(with.DGCTime) / float64(cfg.TTB)
		fig9.AddRow(strings.ToUpper(string(k)),
			fmt.Sprintf("%.2f s", base.AppTime.Seconds()),
			fmt.Sprintf("%.2f s", with.AppTime.Seconds()),
			metrics.Percent(with.AppTime.Seconds(), base.AppTime.Seconds()),
			fmt.Sprintf("%.2f s", with.DGCTime.Seconds()),
			fmt.Sprintf("%.1f", beats),
			paperDGC[k])
	}

	fmt.Println("\nFig. 8 — total bandwidth (paper overhead column for reference):")
	if err := fig8.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nFig. 9 — benchmark time and DGC collection time (paper-scale seconds;")
	fmt.Println("paper collects 256 activities in 15–17 beats):")
	return fig9.Write(os.Stdout)
}
