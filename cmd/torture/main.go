// Command torture regenerates the paper's Fig. 10: the DGC torture test
// (§5.3) at full scale — 6 401 activities over 128 machines exchanging
// references for ten minutes, then collected by the DGC. It prints a
// summary plus the idle/collected time series as CSV.
//
// Fig. 10(a):  torture -ttb 30s  -tta 150s
// Fig. 10(b):  torture -ttb 300s -tta 1500s
//
// With -live, the same workload shape runs (at reduced scale and
// compressed TTB/TTA) on the live goroutine runtime through the typed v2
// API: slave services in a typed Group, reference exchange by Broadcast,
// then a release and the real DGC reclaiming everything.
//
//	torture -live -live-machines 4 -live-slaves 16
//
// In live mode -transport selects the network substrate: the default
// in-memory simnet, or real TCP connections on the loopback interface:
//
//	torture -live -transport tcp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/torture"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ttb      = flag.Duration("ttb", 30*time.Second, "TimeToBeat (paper: 30s / 300s)")
		tta      = flag.Duration("tta", 150*time.Second, "TimeToAlone (paper: 150s / 1500s)")
		machines = flag.Int("machines", 128, "number of machines")
		slaves   = flag.Int("slaves", 50, "slaves per machine")
		active   = flag.Duration("active", 600*time.Second, "reference-exchange phase duration")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		csvPath  = flag.String("csv", "", "write the Fig. 10 curve CSV to this file (default: stdout)")

		live         = flag.Bool("live", false, "run the live-runtime typed-API torture instead of the DES reproduction")
		liveBackend  = flag.String("transport", "sim", "live mode: network substrate, sim (in-memory) or tcp (real loopback TCP)")
		liveMachines = flag.Int("live-machines", 4, "live mode: number of nodes")
		liveSlaves   = flag.Int("live-slaves", 16, "live mode: slaves per node")
		liveRounds   = flag.Int("live-rounds", 8, "live mode: reference-exchange broadcast rounds")
	)
	flag.Parse()

	if *live {
		return runLive(*liveBackend, *liveMachines, *liveSlaves, *liveRounds, *seed)
	}

	params := torture.PaperParams(*ttb, *tta)
	params.Machines = *machines
	params.SlavesPerMachine = *slaves
	params.ActiveFor = *active
	params.Seed = *seed

	fmt.Printf("torture: %d machines x %d slaves + master = %d activities, TTB=%v TTA=%v\n",
		params.Machines, params.SlavesPerMachine,
		params.Machines*params.SlavesPerMachine+1, params.TTB, params.TTA)
	start := time.Now()
	res := torture.Run(params)
	fmt.Printf("simulated in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("collected all:      %v\n", res.CollectedAll)
	fmt.Printf("last collection at: %v (paper Fig. 10a: ~t+1400..2000s after the 600s phase)\n", res.LastCollectedAt)
	fmt.Printf("DGC traffic:        %s in %d messages\n", metrics.Bytes(res.Traffic.DGCBytes), res.Traffic.DGCMessages)
	fmt.Printf("app traffic:        %s in %d messages\n", metrics.Bytes(res.Traffic.AppBytes), res.Traffic.AppMessages)
	fmt.Printf("termination mix:    %v\n\n", res.Reasons)

	rec := metrics.NewRecorder()
	for _, s := range res.Samples {
		rec.Record("idle", s.T, float64(s.Idle))
		rec.Record("collected", s.T, float64(s.Collected))
	}
	out := os.Stdout
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				log.Println(cerr)
			}
		}()
		out = f
		fmt.Println("curve CSV written to", *csvPath)
	} else {
		fmt.Println("curve CSV (idle & collected activities over time):")
	}
	return rec.WriteCSV(out, "idle", "collected")
}
