package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

// exchangeReq is one torture exchange: a batch of peer references the
// slave must hold (dropping its oldest beyond the cap) plus the §5.3
// filler payload standing in for request data.
type exchangeReq struct {
	Peers   []repro.Value `wire:"peers"`
	Payload []byte        `wire:"payload"`
}

// liveHeldRefs mirrors torture.Params.HeldRefs: how many exchanged
// references one slave retains.
const liveHeldRefs = 3

// slaveService stores the last liveHeldRefs peer references it was handed
// — the continuously churning reference graph of §5.3 — and reports how
// many it currently holds.
func slaveService() *repro.Service {
	return repro.NewService(
		repro.Method("exchange", func(ctx *repro.Context, req exchangeReq) (int64, error) {
			held := ctx.Load("held")
			refs := make([]repro.Value, 0, held.Len()+len(req.Peers))
			for i := 0; i < held.Len(); i++ {
				refs = append(refs, held.At(i))
			}
			refs = append(refs, req.Peers...)
			if len(refs) > liveHeldRefs {
				refs = refs[len(refs)-liveHeldRefs:] // oldest stubs die at next sweep
			}
			ctx.Store("held", repro.List(refs...))
			return int64(len(refs)), nil
		}),
	)
}

// runLive is the typed-API live-runtime torture: the same workload shape
// as the DES reproduction (slaves continuously exchanging references,
// then everything going idle) but on real goroutines, driven through a
// typed Group with Broadcast fan-outs, at compressed TTB/TTA.
//
// backend selects the network substrate: "sim" is the in-memory simnet,
// "tcp" routes every cross-node byte — requests, future updates, DGC
// beats — through real TCP connections on the loopback interface.
func runLive(backend string, machines, slavesPerMachine, rounds int, seed int64) error {
	const (
		liveTTB = 20 * time.Millisecond
		liveTTA = 60 * time.Millisecond
	)
	cfg := repro.Config{TTB: liveTTB, TTA: liveTTA}
	switch backend {
	case "sim":
	case "tcp":
		tr, err := repro.NewTCPTransport(repro.TCPConfig{})
		if err != nil {
			return err
		}
		cfg.Transport = tr
	default:
		return fmt.Errorf("unknown -transport %q (want sim or tcp)", backend)
	}
	env := repro.NewEnv(cfg)
	defer env.Close()

	nodes := make([]*repro.Node, machines)
	for i := range nodes {
		nodes[i] = env.NewNode()
	}
	total := machines * slavesPerMachine
	fmt.Printf("live torture (typed API, %s transport): %d nodes x %d slaves = %d activities, TTB=%v TTA=%v\n",
		backend, machines, slavesPerMachine, total, liveTTB, liveTTA)

	handles := make([]*repro.Handle, 0, total)
	for m, node := range nodes {
		for s := 0; s < slavesPerMachine; s++ {
			handles = append(handles, node.NewActive(fmt.Sprintf("slave-%d-%d", m, s), slaveService()))
		}
	}
	group := repro.NewGroup[exchangeReq, int64]("exchange", handles...)

	// Active phase: every round broadcasts a fresh random peer batch to
	// all slaves — each slave then references up to liveHeldRefs others,
	// and the graph churns as old stubs die and new edges appear.
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for r := 0; r < rounds; r++ {
		reqs := make([]exchangeReq, total)
		for i := range reqs {
			peers := make([]repro.Value, 1+rng.Intn(liveHeldRefs))
			for j := range peers {
				peers[j] = handles[rng.Intn(total)].Ref()
			}
			// One buffer per request: marshaling happens later, inside
			// Scatter, so sharing a scratch buffer here would send every
			// slave the same bytes.
			payload := make([]byte, 64)
			rng.Read(payload)
			reqs[i] = exchangeReq{Peers: peers, Payload: payload}
		}
		fg, err := group.Scatter(reqs)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		if _, err := fg.WaitAll(time.Minute); err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
	}
	fmt.Printf("active phase: %d scatter rounds over the group in %v\n",
		rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("live activities before release: %d\n", env.LiveActivities())

	// Idle phase: drop the only external roots. What remains is a large
	// random reference graph — chains, trees and cycles — that the DGC
	// must reclaim completely.
	group.Release()
	wall := time.Now()
	took, err := env.WaitCollected(0, time.Minute)
	if err != nil {
		return fmt.Errorf("DGC incomplete: %w", err)
	}
	st := env.Stats()
	fmt.Printf("all %d activities reclaimed in %v (wall %v)\n",
		st.Created, took.Round(time.Millisecond), time.Since(wall).Round(time.Millisecond))
	fmt.Printf("termination mix: %v\n", st.Collected)
	snap := env.Network().Snapshot()
	fmt.Printf("traffic: app=%dB dgc=%dB future=%dB over %s\n",
		snap.Bytes[repro.ClassApp], snap.Bytes[repro.ClassDGC], snap.Bytes[repro.ClassFuture], backend)
	return nil
}
