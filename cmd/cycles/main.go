// Command cycles replays the paper's Fig. 7 walkthrough on the
// deterministic simulator, tracing every DGC event: (1) the final activity
// clock propagating through the reference graph, (2) the consensus
// candidate travelling back up the reverse spanning tree, (3) the
// consensus decision, and (4) the dying wave collecting the whole compound
// cycle. Run with -busy to add the figure's second case, where a single
// live member vetoes the collection.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		busy = flag.Bool("busy", false, "keep one member busy (the live-object veto case)")
		ttb  = flag.Duration("ttb", 30*time.Second, "TimeToBeat")
		tta  = flag.Duration("tta", 150*time.Second, "TimeToAlone")
		runF = flag.Duration("run", 30*time.Minute, "virtual time to simulate")
	)
	flag.Parse()

	start := time.Unix(0, 0)
	names := map[ids.ActivityID]string{}
	w := sim.NewWorld(sim.Config{
		TTB:  *ttb,
		TTA:  *tta,
		Seed: 1,
		OnEvent: func(ev core.Event) {
			line := fmt.Sprintf("%7.0fs  %-2s %-20s", ev.Time.Sub(start).Seconds(), names[ev.Activity], ev.Kind)
			if !ev.Peer.IsNil() {
				line += fmt.Sprintf("  peer=%s", names[ev.Peer])
			}
			if ev.Kind == core.EventClockAdvanced || ev.Kind == core.EventParentAdopted ||
				ev.Kind == core.EventConsensusDetected {
				line += fmt.Sprintf("  clock=%d(owner %s)", ev.Clock.Value, names[ev.Clock.Owner])
			}
			if ev.Reason != core.ReasonNone {
				line += fmt.Sprintf("  reason=%s", ev.Reason)
			}
			fmt.Println(line)
		},
	})

	if *busy {
		fmt.Println("case 2: D is busy — the compound cycle must survive")
	} else {
		fmt.Println("case 1: all idle — the compound cycle is garbage")
	}
	fmt.Printf("graph: A→B, B→C, C→A, B→D, D→A   (TTB=%v TTA=%v)\n\n", *ttb, *tta)

	// Fig. 7's compound cycle: A→B→C→A sharing A→B with A→B→D→A.
	label := []string{"A", "B", "C", "D"}
	acts := make([]*sim.Activity, 4)
	for i := range acts {
		acts[i] = w.NewActivity(ids.NodeID(i + 1))
		names[acts[i].ID()] = label[i]
	}
	link := func(from, to int) { acts[from].Link(acts[to].ID()) }
	link(0, 1) // A→B
	link(1, 2) // B→C
	link(2, 0) // C→A
	link(1, 3) // B→D
	link(3, 0) // D→A
	if *busy {
		acts[3].SetBusy()
	}

	w.RunFor(*runF)

	fmt.Println()
	for i, a := range acts {
		status := "live"
		if a.Terminated() {
			status = "collected (" + a.Reason().String() + ")"
		}
		fmt.Printf("%s: %s\n", label[i], status)
	}
	collected := w.Collected()
	if *busy && collected != 0 {
		return fmt.Errorf("live cycle was collected — this is a bug")
	}
	if !*busy && collected != 4 {
		return fmt.Errorf("garbage cycle not fully collected (%d/4)", collected)
	}
	fmt.Printf("\ncollected %d/4 after %v of virtual time — matching Fig. 7\n", collected, *runF)
	return nil
}
