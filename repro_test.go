package repro_test

import (
	"testing"
	"time"

	"repro"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow
// end-to-end through the facade.
func TestPublicAPIQuickstart(t *testing.T) {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	node := env.NewNode()
	h := node.NewActive("echo", repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			return args, nil
		}))
	out, err := h.CallSync("echo", repro.String("hi"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.AsString() != "hi" {
		t.Fatalf("echo = %v", out)
	}
	h.Release()
	if _, err := env.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	st := env.Stats()
	if st.Collected[repro.ReasonAcyclic] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPublicAPIDistributedCycle builds the motivating scenario on the
// paper's (scaled) Grid'5000 topology with paper TTB/TTA values on a
// compressed clock: a cross-site cycle of activities that explicit code
// never terminates, reclaimed automatically.
func TestPublicAPIDistributedCycle(t *testing.T) {
	topo := repro.Grid5000().Scaled(32) // 2+2+2 nodes, real RTTs
	env := repro.NewEnv(repro.Config{
		TTB:     30 * time.Second,
		TTA:     75 * time.Second,
		Clock:   repro.ScaledClock(1000),
		Latency: topo.Latency,
		MaxComm: topo.MaxComm(),
	})
	defer env.Close()

	nodes := make([]*repro.Node, topo.NumNodes())
	for i := range nodes {
		nodes[i] = env.NewNode()
	}

	keeper := repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			if method == "hold" {
				ctx.Store("next", args)
			}
			return repro.Null(), nil
		})

	const n = 5
	handles := make([]*repro.Handle, n)
	for i := range handles {
		handles[i] = nodes[i%len(nodes)].NewActive("member", keeper)
	}
	for i, h := range handles {
		next := handles[(i+1)%n]
		if _, err := h.CallSync("hold", next.Ref(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range handles {
		h.Release()
	}
	// Collection needs O(h·TTB) + TTA ≈ a few hundred paper-seconds; the
	// timeout is on the scaled clock (30 paper-minutes ≈ 1.8 wall-seconds).
	if _, err := env.WaitCollected(0, 30*time.Minute); err != nil {
		t.Fatalf("distributed cycle not collected: %v (stats %+v)", err, env.Stats())
	}
	st := env.Stats()
	if st.Collected[repro.ReasonCyclic]+st.Collected[repro.ReasonNotified] == 0 {
		t.Fatalf("no cyclic collection: %+v", st.Collected)
	}
}

// TestPublicAPIRegistry covers the registry-root behaviour through the
// facade.
func TestPublicAPIRegistry(t *testing.T) {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	node := env.NewNode()
	h := node.NewActive("svc", repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			return repro.Int(7), nil
		}))
	if err := env.RegisterName("the-service", h.Ref()); err != nil {
		t.Fatal(err)
	}
	h.Release()
	time.Sleep(20 * repro.DefaultTTB)
	if env.LiveActivities() != 1 {
		t.Fatal("registered service was collected")
	}
	ref, err := env.Lookup("the-service")
	if err != nil {
		t.Fatal(err)
	}
	client, err := node.HandleFor(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.CallSync("anything", repro.Null(), 5*time.Second)
	if err != nil || got.AsInt() != 7 {
		t.Fatalf("call = %v, %v", got, err)
	}
	client.Release()
	env.Unregister("the-service")
	if _, err := env.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestValueConstructors sanity-checks the facade's wire constructors.
func TestValueConstructors(t *testing.T) {
	v := repro.Dict(map[string]repro.Value{
		"b":  repro.Bool(true),
		"i":  repro.Int(-4),
		"f":  repro.Float(1.5),
		"s":  repro.String("x"),
		"by": repro.Bytes([]byte{1}),
		"fs": repro.Floats([]float64{2, 3}),
		"l":  repro.List(repro.Null()),
		"r":  repro.Ref(repro.ActivityID{Node: 1, Seq: 1}),
	})
	if v.Len() != 8 {
		t.Fatalf("dict len = %d", v.Len())
	}
	if !v.Get("b").AsBool() || v.Get("i").AsInt() != -4 || v.Get("fs").AsFloats()[1] != 3 {
		t.Fatal("constructor round-trips failed")
	}
	if _, ok := v.Get("r").AsRef(); !ok {
		t.Fatal("ref constructor failed")
	}
}
