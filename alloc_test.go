//go:build !race

package repro_test

// Alloc-regression gates for the end-to-end messaging hot paths: the
// whole-process allocation bill of one operation (caller marshal, wire
// encode, queue, serve, reply, future resolution) must not creep. The
// budgets sit just above the measured steady state; excluded under the
// race detector, whose instrumentation changes allocation behavior.

import (
	"testing"
	"time"

	"repro"
)

// TestAllocsTypedCallRoundTrip gates the intra-node synchronous typed
// call: the full round trip currently bills ~12 allocations across both
// goroutines (request marshal, queue entry, future, reply marshal); the
// budget leaves slack only for scheduling jitter, not for a lost fast
// path.
func TestAllocsTypedCallRoundTrip(t *testing.T) {
	env := repro.NewEnv(repro.Config{DisableDGC: true})
	defer env.Close()
	h := env.NewNode().NewActive("alloc-call", repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req benchReq) (benchResp, error) {
			return benchResp{Sum: req.A + req.B, Tag: req.Tag}, nil
		})))
	defer h.Release()
	stub := repro.NewStub[benchReq, benchResp](h, "add")
	req := benchReq{A: 19, B: 23, Tag: "bench"}
	call := func() {
		resp, err := stub.CallSync(req, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Sum != 42 {
			t.Fatalf("sum = %d", resp.Sum)
		}
	}
	call() // warm the plan cache and serve loop
	if got := testing.AllocsPerRun(200, call); got > 16 {
		t.Errorf("typed call round trip: %.1f allocs/op, budget 16", got)
	}
}

// TestAllocsOneWaySend gates the fire-and-forget send: marshal plus
// enqueue, no future, no reply. This is the per-message bill of the
// sends-1m-local loadgen scenario.
func TestAllocsOneWaySend(t *testing.T) {
	env := repro.NewEnv(repro.Config{DisableDGC: true})
	defer env.Close()
	h := env.NewNode().NewActive("alloc-send", repro.NewService(
		repro.Method("bump", func(ctx *repro.Context, v int64) (int64, error) {
			return v + 1, nil
		})))
	defer h.Release()
	stub := repro.NewStub[int64, int64](h, "bump")
	send := func() {
		if err := stub.Send(7); err != nil {
			t.Fatal(err)
		}
	}
	send()
	got := testing.AllocsPerRun(200, send)
	// Drain the queued one-ways before judging, so a failure message is
	// not followed by a noisy teardown.
	if _, err := stub.CallSync(0, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if got > 8 {
		t.Errorf("one-way send: %.1f allocs/op, budget 8", got)
	}
}
